"""The counter registry: resolution, aliases, errors, the protocol."""

import pytest

from repro.api import (
    CountRequest, Counter, Problem, available_counters, canonical_name,
    register, resolve,
)
from repro.api.registry import _ALIASES, _COUNTERS
from repro.errors import CounterError
from repro.smt.terms import bv_ult, bv_val, bv_var
from repro.status import Status


def _problem(name="rg_x", width=8, bound=100):
    x = bv_var(name, width)
    return Problem.from_terms([bv_ult(x, bv_val(bound, width))], [x],
                              name=name)


class TestResolution:
    def test_canonical_names(self):
        assert available_counters() == ("cdm", "enum", "exact:cc",
                                        "pact:prime", "pact:shift",
                                        "pact:xor")

    def test_legacy_configuration_aliases(self):
        """harness/runner configuration names resolve unchanged."""
        for configuration, canonical in (
                ("pact_xor", "pact:xor"), ("pact_prime", "pact:prime"),
                ("pact_shift", "pact:shift"), ("cdm", "cdm")):
            assert canonical_name(configuration) == canonical
            assert resolve(configuration).name == canonical

    def test_cli_family_aliases(self):
        assert canonical_name("xor") == "pact:xor"
        assert canonical_name("shift") == "pact:shift"
        assert canonical_name("exact") == "enum"

    def test_case_and_whitespace_insensitive(self):
        assert canonical_name(" PACT:XOR ") == "pact:xor"

    def test_unknown_counter_lists_available(self):
        with pytest.raises(CounterError) as excinfo:
            resolve("pact_md5")
        message = str(excinfo.value)
        assert "pact_md5" in message
        assert "pact:xor" in message and "cdm" in message

    def test_registered_objects_satisfy_protocol(self):
        for counter in _COUNTERS.values():
            assert isinstance(counter, Counter)
            assert canonical_name(counter.name) == counter.name

    def test_register_custom_counter(self):
        class FortyTwo:
            name = "always:42"

            def count(self, problem, request, *, pool=None,
                      deadline=None):
                from repro.api import CountResponse
                return CountResponse(estimate=42, counter=self.name,
                                     problem=problem.name)

        register(FortyTwo(), aliases=("fortytwo",))
        try:
            assert resolve("fortytwo").count(
                _problem("rg_custom"), CountRequest()).estimate == 42
        finally:
            _COUNTERS.pop("always:42")
            _ALIASES.pop("fortytwo")


class TestCounterBehaviour:
    def test_pact_counter_matches_legacy_call(self):
        from repro import count_projected
        problem = _problem("rg_pact", bound=200)
        request = CountRequest(counter="pact:xor", seed=5,
                               iteration_override=3)
        response = resolve("pact:xor").count(problem, request)
        legacy = count_projected(list(problem.assertions),
                                 list(problem.projection), seed=5,
                                 iteration_override=3, family="xor")
        assert response.estimate == legacy.estimate
        assert response.estimates == legacy.estimates
        assert response.counter == "pact:xor"
        assert response.problem == "rg_pact"

    def test_enum_counter_reports_limit(self):
        response = resolve("enum").count(
            _problem("rg_enum"), CountRequest(counter="enum", limit=3))
        assert not response.solved
        assert response.status is Status.LIMIT

    def test_cdm_counter_solves(self):
        problem = _problem("rg_cdm", width=6, bound=40)
        response = resolve("cdm").count(
            problem, CountRequest(counter="cdm", iteration_override=2))
        assert response.solved
        assert response.counter == "cdm"

    @pytest.mark.parametrize("name", ["pact:xor", "cdm", "enum"])
    def test_external_deadline_reaches_every_counter(self, name):
        """The portfolio's shared (cancellable) deadline is honoured by
        all counters, not just pact."""
        from repro.utils.deadline import Deadline
        tag = name.replace(":", "_")
        response = resolve(name).count(
            _problem(f"rg_dl_{tag}", bound=200),
            CountRequest(counter=name, iteration_override=2),
            deadline=Deadline(0))
        assert response.status is Status.TIMEOUT
