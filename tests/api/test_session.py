"""Session: the three verbs, cache observation, backend determinism."""

import json

import pytest

from repro.api import CountRequest, Problem, Session
from repro.engine.cache import ResultCache
from repro.smt.terms import bv_ult, bv_val, bv_var
from repro.status import Status

SEED = 11


def _problem(name, width=8, bound=200):
    x = bv_var(name, width)
    return Problem.from_terms([bv_ult(x, bv_val(bound, width))], [x],
                              name=name)


def _request(**overrides):
    defaults = dict(counter="pact:xor", seed=SEED, iteration_override=3)
    defaults.update(overrides)
    return CountRequest(**defaults)


class TestIncrementalKnob:
    def test_incremental_off_same_estimates(self):
        """The A/B baseline mode through the API: identical estimates."""
        problem = _problem("ss_inc")
        warm = Session().count(problem, _request())
        cold = Session().count(problem, _request(incremental=False))
        assert warm.estimates == cold.estimates
        assert warm.estimate == cold.estimate

    def test_count_batch_threads_knob_to_workers(self, tmp_path):
        """count_batch must run (and cache) under the requested mode —
        the picklable spec carries ``incremental`` to the workers."""
        problem = _problem("ss_incbatch")
        request = _request(incremental=False)
        session = Session(cache_dir=tmp_path)
        [response] = session.count_batch([problem], request)
        session.close()
        baseline = Session().count(problem, request)
        assert response.estimates == baseline.estimates
        cache = ResultCache(tmp_path)
        key = problem.fingerprint(request.cache_params("pact:xor"))
        assert cache.get(key) is not None

    def test_default_fingerprint_unchanged_by_knob(self):
        """Default-mode fingerprints must stay byte-identical to caches
        written before the knob existed; only incremental=False keys
        differently (its solver_calls/timing differ)."""
        problem = _problem("ss_incfp")
        default = problem.fingerprint(_request().cache_params())
        explicit = problem.fingerprint(
            _request(incremental=True).cache_params())
        baseline = problem.fingerprint(
            _request(incremental=False).cache_params())
        assert default == explicit
        assert baseline != default


class TestCount:
    def test_count_matches_legacy(self):
        from repro import count_projected
        problem = _problem("ss_count")
        response = Session().count(problem, _request())
        legacy = count_projected(list(problem.assertions),
                                 list(problem.projection), seed=SEED,
                                 iteration_override=3, family="xor")
        assert response.estimate == legacy.estimate
        assert response.estimates == legacy.estimates

    def test_overrides_apply(self):
        response = Session().count(_problem("ss_override"), _request(),
                                   counter="enum")
        assert response.counter == "enum"
        assert response.exact

    def test_unknown_counter_raises_before_running(self):
        from repro.errors import CounterError
        with pytest.raises(CounterError) as excinfo:
            Session().count(_problem("ss_bad"), _request(),
                            counter="pact:md5")
        assert "pact:md5" in str(excinfo.value)

    def test_counter_failure_becomes_response(self):
        """Failures *inside* a counter surface as error responses."""
        x = bv_var("ss_bool", 1)
        from repro.smt.terms import bool_var
        problem = Problem(assertions=(bv_ult(x, bv_val(1, 1)),),
                          projection=(bool_var("ss_not_bv"),),
                          name="ss_badproj")
        response = Session().count(problem, _request())
        assert response.status is Status.ERROR
        assert "bit-vector" in response.detail

    def test_progress_events(self):
        events = []
        Session().count(_problem("ss_events"), _request(),
                        progress=events.append)
        assert [event.kind for event in events] == ["completed"]
        assert events[0].counter == "pact:xor"


class TestCache:
    def test_hit_observed_through_response(self, tmp_path):
        problem = _problem("ss_cache")
        with Session(cache_dir=tmp_path) as session:
            first = session.count(problem, _request())
            second = session.count(problem, _request())
        assert not first.cached
        assert second.cached
        assert second.worker == "cache"
        assert second.estimate == first.estimate
        assert session.cache.stats["hits"] == 1

    def test_hit_survives_new_session(self, tmp_path):
        problem = _problem("ss_cache2")
        with Session(cache_dir=tmp_path) as session:
            session.count(problem, _request())
        with Session(cache_dir=tmp_path) as session:
            again = session.count(problem, _request())
        assert again.cached

    def test_different_counter_misses(self, tmp_path):
        problem = _problem("ss_cache3")
        with Session(cache_dir=tmp_path) as session:
            session.count(problem, _request())
            other = session.count(problem, _request(counter="pact:prime"))
        assert not other.cached

    def test_old_format_cache_entry_loads(self, tmp_path):
        """Entries written before the API layer (plain string status, no
        counter/iterations keys) still serve hits."""
        problem = _problem("ss_legacy")
        request = _request()
        fingerprint = problem.fingerprint(
            request.cache_params("pact:xor"))
        (tmp_path / "pact-cache.json").write_text(json.dumps({
            "version": 1,
            "entries": {fingerprint: {
                "estimate": 137, "status": "ok",
                "time_seconds": 1.5, "solver_calls": 12}},
        }))
        response = Session(cache_dir=tmp_path).count(problem, request)
        assert response.cached
        assert response.estimate == 137
        assert response.status is Status.OK

    def test_cache_file_status_is_plain_string(self, tmp_path):
        """New entries keep the old on-disk vocabulary."""
        with Session(cache_dir=tmp_path) as session:
            session.count(_problem("ss_disk"), _request())
        document = json.loads(
            (ResultCache(tmp_path).path).read_text())
        statuses = [entry["status"]
                    for entry in document["entries"].values()]
        assert statuses == ["ok"]


class TestBatch:
    def _problems(self, tag):
        return [_problem(f"ss_{tag}_{i}", bound=150 + 13 * i)
                for i in range(4)]

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 2), ("process", 2)])
    def test_batch_deterministic_across_backends(self, backend, jobs):
        problems = self._problems("batch")
        serial = Session().count_batch(problems, _request())
        parallel = Session(jobs=jobs, backend=backend).count_batch(
            problems, _request())
        assert [r.problem for r in parallel] == [p.name for p in problems]
        assert ([r.estimate for r in parallel]
                == [r.estimate for r in serial])
        assert ([r.estimates for r in parallel]
                == [r.estimates for r in serial])

    def test_batch_uses_cache(self, tmp_path):
        problems = self._problems("bcache")
        with Session(cache_dir=tmp_path) as session:
            first = session.count_batch(problems, _request())
            second = session.count_batch(problems, _request())
        assert not any(r.cached for r in first)
        assert all(r.cached for r in second)
        assert ([r.estimate for r in second]
                == [r.estimate for r in first])


class TestPortfolio:
    COUNTERS = ("pact:xor", "pact:prime", "cdm")

    def test_winner_deterministic_under_fixed_seed(self):
        problem = _problem("ss_port")
        runs = [Session().portfolio(problem, self.COUNTERS,
                                    _request(counter="pact:xor"))
                for _ in range(2)]
        assert runs[0].winner == runs[1].winner == "pact:xor"
        assert (runs[0].response.estimate == runs[1].response.estimate)
        assert ([e.status for e in runs[0].entries]
                == [e.status for e in runs[1].entries])

    def test_losers_cancelled_cooperatively(self):
        outcome = Session().portfolio(_problem("ss_port2"),
                                      self.COUNTERS, _request())
        assert outcome.entries[0].solved
        assert all(entry.status is Status.CANCELLED
                   for entry in outcome.entries[1:])

    def test_first_successful_counter_wins(self):
        """A failing first counter passes the baton down the list."""
        outcome = Session().portfolio(
            _problem("ss_port3"), ("enum", "pact:xor"),
            _request(counter="enum", limit=3))
        assert outcome.entries[0].status is Status.LIMIT
        assert outcome.winner == "pact:xor"
        assert outcome.response.solved

    def test_report_includes_per_counter_timing(self):
        outcome = Session().portfolio(_problem("ss_port4"),
                                      self.COUNTERS, _request())
        report = outcome.report()
        for name in self.COUNTERS:
            assert name in report
        assert "winner=pact:xor" in report
        assert "s" in report  # timing column

    def test_parallel_portfolio_solves(self):
        outcome = Session(jobs=2, backend="thread").portfolio(
            _problem("ss_port5"), self.COUNTERS, _request())
        assert outcome.solved
        assert len(outcome.entries) == len(self.COUNTERS)
        assert outcome.response.estimate is not None


class TestArtifactStore:
    def test_artifact_persisted_and_preloaded(self, tmp_path):
        from repro.compile import compile_counters, reset_compile_memo
        from repro.smt.terms import bv_ult, bv_val, bv_var

        x = bv_var("ss_artifact", 8)
        problem = Problem.from_terms([bv_ult(x, bv_val(150, 8))], [x])
        reset_compile_memo()
        try:
            with Session(cache_dir=tmp_path) as session:
                first = session.count(problem, CountRequest(
                    counter="pact:xor", seed=5, iteration_override=2))
            assert first.solved
            assert list((tmp_path / "artifacts").glob("*-s1.json"))
            assert compile_counters()["builds"] == 1

            # A "cold process": memo wiped, result cache missed (new
            # seed) — the artifact store must satisfy the compile.
            reset_compile_memo()
            with Session(cache_dir=tmp_path) as session:
                second = session.count(problem, CountRequest(
                    counter="pact:xor", seed=6, iteration_override=2))
            assert second.solved and not second.cached
            assert compile_counters()["builds"] == 0
        finally:
            reset_compile_memo()

    def test_corrupt_artifact_recompiles(self, tmp_path):
        from repro.compile import reset_compile_memo
        from repro.smt.terms import bv_ult, bv_val, bv_var

        x = bv_var("ss_corrupt", 8)
        problem = Problem.from_terms([bv_ult(x, bv_val(99, 8))], [x])
        reset_compile_memo()
        try:
            with Session(cache_dir=tmp_path) as session:
                assert session.count(problem, CountRequest(
                    counter="pact:xor", seed=5,
                    iteration_override=2)).solved
            for path in (tmp_path / "artifacts").glob("*.json"):
                path.write_text("{broken")
            reset_compile_memo()
            with Session(cache_dir=tmp_path) as session:
                response = session.count(problem, CountRequest(
                    counter="pact:xor", seed=7, iteration_override=2))
            assert response.solved
        finally:
            reset_compile_memo()

    def test_concurrent_thread_writers_share_the_artifact_store(
            self, tmp_path):
        """The serving layer's worker threads call ``count`` on one
        shared session concurrently: ``_preload_artifact`` /
        ``_persist_artifact`` must stay race-free (atomic artifact
        writes, locked store) and every response must be correct."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.compile import reset_compile_memo

        problems = [_problem(f"ss_thread_{n}", bound=50 + n)
                    for n in range(6)]
        baseline = {problem.name:
                    Session().count(problem, _request()).estimate
                    for problem in problems}
        reset_compile_memo()
        try:
            session = Session(cache_dir=tmp_path)
            with ThreadPoolExecutor(max_workers=8) as executor:
                # Each problem counted twice, interleaved across
                # threads — both compile-then-persist and preload paths
                # race on the same digests.
                responses = list(executor.map(
                    lambda problem: session.count(problem, _request()),
                    problems * 2))
            session.close()
        finally:
            reset_compile_memo()
        assert all(response.solved for response in responses)
        for response in responses:
            assert response.estimate == baseline[response.problem]
        # Every artifact on disk round-trips as valid JSON (no torn
        # concurrent writes) under its problem's digest.
        artifacts = list((tmp_path / "artifacts").glob("*.json"))
        assert artifacts
        digests = {path.name.split("-")[0] for path in artifacts}
        assert digests <= {problem.compile_key for problem in problems}
        for path in artifacts:
            assert isinstance(json.loads(path.read_text()), dict)
