"""Benchmark generator tests: counts must be analytic AND correct."""

import pytest

from repro import exact_count
from repro.benchgen import build_suite, select_benchmarks
from repro.benchgen.generators import GENERATORS
from repro.benchgen.suite import LOGICS, accuracy_pool
from repro.smt.parser import parse_script


class TestGeneratorBasics:
    @pytest.mark.parametrize("logic", LOGICS)
    def test_instance_well_formed(self, logic):
        instance = GENERATORS[logic](seed=1, width=9)
        assert instance.logic == logic
        assert instance.projection
        assert instance.assertions
        assert instance.known_count is not None
        assert instance.projection_bits() == 9

    @pytest.mark.parametrize("logic", LOGICS)
    def test_deterministic(self, logic):
        first = GENERATORS[logic](seed=4, width=9)
        second = GENERATORS[logic](seed=4, width=9)
        assert first.known_count == second.known_count
        assert [a is b for a, b in
                zip(first.assertions, second.assertions)]

    @pytest.mark.parametrize("logic", LOGICS)
    def test_seeds_vary_instances(self, logic):
        counts = {GENERATORS[logic](seed=s, width=10).known_count
                  for s in range(8)}
        assert len(counts) > 1

    def test_deterministic_across_processes(self):
        """Instances must be identical run-to-run regardless of Python's
        per-process string-hash randomisation — the engine's fingerprint
        cache keys on the printed formula."""
        import os
        import subprocess
        import sys

        program = (
            "import hashlib\n"
            "from repro.benchgen.generators import qf_bvfp\n"
            "script = qf_bvfp(seed=10000, width=9).to_smtlib()\n"
            "print(hashlib.sha256(script.encode()).hexdigest())\n")
        digests = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            output = subprocess.run(
                [sys.executable, "-c", program], env=env, check=True,
                capture_output=True, text=True).stdout.strip()
            digests.add(output)
        assert len(digests) == 1

    @pytest.mark.parametrize("logic", LOGICS)
    def test_known_count_matches_enum(self, logic):
        """The central generator invariant, checked through the solver."""
        instance = GENERATORS[logic](seed=2, width=9)
        result = exact_count(instance.assertions, instance.projection,
                             timeout=120)
        assert result.solved
        assert result.estimate == instance.known_count, instance.name

    @pytest.mark.parametrize("logic", LOGICS)
    def test_smtlib_round_trip(self, logic):
        instance = GENERATORS[logic](seed=3, width=9)
        script = parse_script(instance.to_smtlib())
        assert len(script.assertions) == len(instance.assertions)
        assert [v.name for v in script.projection] == [
            v.name for v in instance.projection]
        # Re-parsed assertions are the *same* interned terms.
        for original, reparsed in zip(instance.assertions,
                                      script.assertions):
            assert original is reparsed


class TestSuite:
    def test_build_suite_covers_all_logics(self):
        pool = build_suite(per_logic=3, base_seed=5)
        assert len(pool) == 3 * len(LOGICS)
        assert {i.logic for i in pool} == set(LOGICS)

    def test_min_count_filter(self):
        pool = build_suite(per_logic=6, base_seed=5)
        kept = select_benchmarks(pool, min_count=300, sat_budget=None)
        assert all(i.known_count >= 300 for i in kept)

    def test_cluster_cap(self):
        pool = build_suite(per_logic=12, base_seed=5,
                           widths=(9,))  # all in one cluster per logic
        kept = select_benchmarks(pool, min_count=0, max_per_cluster=5,
                                 sat_budget=None)
        clusters = {}
        for instance in kept:
            clusters[instance.cluster] = clusters.get(instance.cluster,
                                                      0) + 1
        assert all(count <= 5 for count in clusters.values())

    def test_sat_filter_drops_unsat(self):
        pool = build_suite(per_logic=6, base_seed=5)
        kept = select_benchmarks(pool, min_count=0, sat_budget=5.0)
        # Instances with zero solutions are unsat and must be gone.
        assert all(i.known_count > 0 for i in kept)

    def test_accuracy_pool_in_band(self):
        instances = accuracy_pool(per_logic=1)
        assert len(instances) == len(LOGICS)
        assert all(100 <= i.known_count <= 500 for i in instances)
