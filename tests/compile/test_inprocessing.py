"""Targeted tests for the inprocessing stages (probe, bce).

The stage-prefix property suite (``test_simplify_preservation.py``)
already checks every prefix of ``STAGES`` end-to-end through the
compile pipeline; these tests pin the two new stages directly:
mechanism (failed literals asserted, blocked clauses removed, the
protection rules honoured) and the projected-count-preservation
property on random CNF+XOR states with an arbitrary frozen set —
a wider input class than the pipeline produces.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.compile.artifact import CompileStats
from repro.compile.simplify import (
    CnfState, eliminate_blocked_clauses, probe_failed_literals,
    propagate_units,
)
from repro.sat.solver import SatSnapshot


def make_state(num_vars, clauses, xors=(), frozen=(), units=()):
    snap = SatSnapshot(
        num_vars=num_vars,
        clauses=tuple(tuple(c) for c in clauses),
        units=tuple(units),
        xors=tuple((tuple(variables), bool(rhs))
                   for variables, rhs in xors),
        ok=True)
    return CnfState(snap, set(frozen))


def projected_count(state: CnfState, projection_vars) -> int:
    """Brute-force projected count of the state's formula (clauses +
    XOR rows + root assignment) over ``projection_vars``."""
    if not state.ok:
        return 0
    num_vars = state.num_vars
    projection = sorted(projection_vars)
    cells = set()
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = (False,) + bits
        if any(state.assign[var] != assignment[var]
               for var in state.assign):
            continue
        if not all(any(assignment[abs(lit)] == (lit > 0) for lit in c)
                   for c in state.clauses):
            continue
        if not all(
                sum(assignment[v] for v in variables) % 2
                == (1 if rhs else 0)
                for variables, rhs in state.xors):
            continue
        cells.add(tuple(assignment[var] for var in projection))
    return len(cells)


# ----------------------------------------------------------------------
# failed-literal probing: mechanism
# ----------------------------------------------------------------------
def test_probe_asserts_failed_literal():
    # (1 2) (1 -2): assuming -1 propagates 2 and -2 — conflict, so 1
    # is entailed and must join the root assignment.
    state = make_state(2, [[1, 2], [1, -2]])
    stats = CompileStats()
    probe_failed_literals(state, stats)
    assert state.ok
    assert state.assign.get(1) is True
    assert stats.failed_literals >= 1
    assert state.clauses == []  # both clauses satisfied and dropped


def test_probe_may_fix_frozen_variables():
    # Entailed units are sound for protected variables too.
    state = make_state(2, [[1, 2], [1, -2]], frozen={1, 2})
    probe_failed_literals(state, CompileStats())
    assert state.ok
    assert state.assign.get(1) is True


def test_probe_detects_unsat_when_both_polarities_fail():
    state = make_state(2, [[1, 2], [1, -2], [-1, 2], [-1, -2]])
    probe_failed_literals(state, CompileStats())
    assert not state.ok


def test_probe_uses_xor_rows():
    # Binary XOR 1^2=0 makes 1 and 2 equivalent; clause (-1 -2) then
    # fails the assumption 1 (it propagates 2 and falsifies the
    # clause), so -1 is entailed.
    state = make_state(2, [[-1, -2]], xors=[([1, 2], False)])
    probe_failed_literals(state, CompileStats())
    assert state.ok
    assert state.assign.get(1) is False
    assert state.assign.get(2) is False


# ----------------------------------------------------------------------
# blocked-clause elimination: mechanism
# ----------------------------------------------------------------------
def test_bce_removes_blocked_clause():
    # (1 2) is blocked on 1: the only clause with -1 is (-1 -2), and
    # the resolvent (2 -2) is tautological.  Confluently, (-1 -2) is
    # then blocked too (no clause with 1 remains), so BCE drains both.
    state = make_state(2, [[1, 2], [-1, -2]])
    stats = CompileStats()
    eliminate_blocked_clauses(state, stats)
    assert state.ok
    assert stats.blocked_clauses == 2
    assert state.clauses == []


def test_bce_respects_frozen_and_xor_vars():
    state = make_state(2, [[1, 2], [-1, -2]], frozen={1, 2})
    stats = CompileStats()
    eliminate_blocked_clauses(state, stats)
    assert stats.blocked_clauses == 0
    assert len(state.clauses) == 2

    state = make_state(2, [[1, 2], [-1, -2]], xors=[([1, 2], True)])
    eliminate_blocked_clauses(state, stats)
    assert len(state.clauses) == 2


def test_bce_keeps_unblocked_clauses():
    # (1 2) resolved with (-1 2) on 1 gives (2): not tautological, and
    # var 2's resolvents aren't tautological either — nothing blocked
    # until the frozen set stops var-1-based removal entirely.
    state = make_state(2, [[1, 2], [-1, 2]], frozen={1})
    stats = CompileStats()
    eliminate_blocked_clauses(state, stats)
    # blocked on 2: no clause contains -2, so both clauses are blocked
    # on literal 2 (vacuously) and removed — a pure-literal special
    # case, sound because var 2 is unprotected.
    assert stats.blocked_clauses == 2
    assert state.clauses == []


# ----------------------------------------------------------------------
# projected-count preservation on random states
# ----------------------------------------------------------------------
@st.composite
def cnf_states(draw):
    num_vars = draw(st.integers(min_value=2, max_value=5))
    variables = st.integers(min_value=1, max_value=num_vars)
    clause = st.lists(variables, min_size=1, max_size=3,
                      unique=True).flatmap(
        lambda vs: st.tuples(*[st.sampled_from([v, -v]) for v in vs]))
    clauses = draw(st.lists(clause, min_size=0, max_size=7))
    xor = st.tuples(
        st.lists(variables, min_size=1, max_size=num_vars, unique=True),
        st.booleans())
    xors = draw(st.lists(xor, min_size=0, max_size=2))
    frozen = draw(st.sets(variables, max_size=num_vars))
    return num_vars, [list(c) for c in clauses], xors, frozen


@given(cnf_states())
@settings(max_examples=120, deadline=None)
def test_probe_preserves_projected_count(problem):
    num_vars, clauses, xors, frozen = problem
    state = make_state(num_vars, clauses, xors, frozen)
    before = projected_count(state, frozen)
    probe_failed_literals(state, CompileStats())
    assert projected_count(state, frozen) == before


@given(cnf_states())
@settings(max_examples=120, deadline=None)
def test_bce_preserves_projected_count(problem):
    num_vars, clauses, xors, frozen = problem
    state = make_state(num_vars, clauses, xors, frozen)
    propagate_units(state)
    before = projected_count(state, frozen)
    eliminate_blocked_clauses(state, CompileStats())
    assert projected_count(state, frozen) == before


@given(cnf_states())
@settings(max_examples=80, deadline=None)
def test_probe_then_bce_compose(problem):
    num_vars, clauses, xors, frozen = problem
    state = make_state(num_vars, clauses, xors, frozen)
    before = projected_count(state, frozen)
    probe_failed_literals(state, CompileStats())
    eliminate_blocked_clauses(state, CompileStats())
    assert projected_count(state, frozen) == before
