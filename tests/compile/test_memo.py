"""The per-process compile memo: compilation runs exactly once per
(problem, params) per process — serially, under a thread race, under
Session thread fan-out, and per worker under the process backend."""

import threading

import pytest

from repro.api import CountRequest, Problem, Session
from repro.compile import (
    compile_counters, compile_digest, compiled_for, peek_compiled,
    preseed_compile_memo, reset_compile_memo,
)
from repro.engine.fanout import make_spec, run_iteration
from repro.engine.pool import ExecutionPool
from repro.smt.terms import bv_ult, bv_val, bv_var


@pytest.fixture(autouse=True)
def _fresh_memo():
    reset_compile_memo()
    yield
    reset_compile_memo()


def _formula(name, width=8, bound=200):
    x = bv_var(name, width)
    return [bv_ult(x, bv_val(bound, width))], [x]


class TestExactlyOnce:
    def test_repeated_calls_build_once(self):
        assertions, projection = _formula("memo_a")
        for _ in range(5):
            compiled_for(assertions, projection, digest="d1")
        counters = compile_counters()
        assert counters["builds"] == 1
        assert counters["per_key"] == {("d1", "pact", True): 1}

    def test_distinct_params_build_separately(self):
        assertions, projection = _formula("memo_b")
        compiled_for(assertions, projection, digest="d1")
        compiled_for(assertions, projection, digest="d1", simplify=False)
        compiled_for(assertions, projection, digest="d1", kind="cdm",
                     extra=(2,))
        assert compile_counters()["builds"] == 3

    def test_thread_race_builds_once(self):
        assertions, projection = _formula("memo_c", width=10)
        barrier = threading.Barrier(8)
        results = []

        def racer():
            barrier.wait()
            results.append(compiled_for(assertions, projection,
                                        digest="race"))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert compile_counters()["builds"] == 1
        assert all(artifact is results[0] for artifact in results)

    def test_preseed_counts_as_no_build(self):
        assertions, projection = _formula("memo_d")
        artifact = compiled_for(assertions, projection, digest="seed1")
        reset_compile_memo()
        preseed_compile_memo(artifact)
        assert peek_compiled("seed1") is artifact
        again = compiled_for(assertions, projection, digest="seed1")
        assert again is artifact
        assert compile_counters()["builds"] == 0


class TestFanOutExactlyOnce:
    def test_session_thread_fanout_compiles_once(self):
        assertions, projection = _formula("memo_fan", width=12, bound=3000)
        problem = Problem.from_terms(assertions, projection)
        with Session(jobs=4, backend="thread") as session:
            response = session.count(
                problem, CountRequest(counter="pact:xor", seed=3,
                                      iteration_override=6))
        assert response.solved
        counters = compile_counters()
        pact_keys = {key: count for key, count in
                     counters["per_key"].items() if key[1] == "pact"}
        assert len(pact_keys) == 1
        assert set(pact_keys.values()) == {1}

    def test_process_workers_compile_once_each(self):
        # Each worker runs several iterations of the same spec; its
        # process-local memo must record at most one build for the key.
        assertions, projection = _formula("memo_proc", width=12,
                                          bound=3000)
        spec = make_spec("pact", assertions, projection, epsilon=0.8,
                         delta=0.2, family="xor", seed=3)
        pool = ExecutionPool(jobs=2, backend="process")
        results = pool.map(_iterations_then_builds,
                           [(spec,), (spec,), (spec,), (spec,)],
                           budget=120)
        assert all(result.ok for result in results)
        for result in results:
            estimates, builds = result.value
            assert len(estimates) == 2
            assert builds <= 1  # 0 when forked with a pre-seeded memo


def _iterations_then_builds(spec, budget=None):
    """Worker body: run two iterations, report this process's builds."""
    estimates = [run_iteration(spec, index, budget=budget)
                 for index in range(2)]
    per_key = compile_counters()["per_key"]
    builds = sum(count for key, count in per_key.items()
                 if key[0] == spec.artifact_digest())
    return estimates, builds
