"""The staged compile pipeline: artifact structure, reconstruction,
DIMACS export and the on-disk payload round trip."""

import pytest

from repro.benchgen.suite import build_suite
from repro.compile import CompiledProblem, compile_problem
from repro.core.cells import CallCounter, saturating_count
from repro.core.enumerate import exact_count
from repro.sat.dimacs import load_solver, parse_dimacs_document
from repro.smt.solver import SmtSolver
from repro.smt.terms import (
    bv_ult, bv_val, bv_var, real_lt, real_val, real_var,
)
from repro.utils.deadline import Deadline

BIG = 10 ** 9


def _instances(width=5):
    return build_suite(per_logic=1, base_seed=3, widths=(width,))


def _exact_via(artifact):
    solver = SmtSolver.from_compiled(artifact)
    return saturating_count(solver, list(artifact.projection), BIG,
                            Deadline(60), CallCounter())


class TestCountingEquivalence:
    @pytest.mark.parametrize("instance", _instances(),
                             ids=lambda inst: inst.logic)
    def test_compiled_counts_match_known(self, instance):
        for simplify in (True, False):
            artifact = compile_problem(instance.assertions,
                                       instance.projection,
                                       simplify=simplify, digest="t")
            assert _exact_via(artifact) == instance.known_count

    def test_matches_legacy_direct_solver(self):
        x = bv_var("cpl_x", 6)
        assertions = [bv_ult(x, bv_val(41, 6))]
        artifact = compile_problem(assertions, [x], digest="t")
        legacy = exact_count(assertions, [x]).estimate
        assert _exact_via(artifact) == legacy == 41

    def test_variable_numbering_stable_across_modes(self):
        # Simplification may only remove/rewrite clauses, never
        # deallocate variables: later allocations (hash gates, blocking
        # frames) must number identically with the knob on or off.
        instance = _instances()[0]
        on = compile_problem(instance.assertions, instance.projection,
                             simplify=True, digest="t")
        off = compile_problem(instance.assertions, instance.projection,
                              simplify=False, digest="t")
        assert on.num_vars == off.num_vars
        assert on.projection_bits == off.projection_bits
        assert on.true_lit == off.true_lit


class TestArtifactStructure:
    def test_flat_bits_align_with_projection(self):
        instance = _instances()[0]
        artifact = compile_problem(instance.assertions,
                                   instance.projection, digest="t")
        widths = [var.sort.width for var in artifact.projection]
        assert len(artifact.flat_bits) == sum(widths)
        assert all(len(bits) == width for bits, width
                   in zip(artifact.projection_bits, widths))

    def test_support_subset_of_positions(self):
        for instance in _instances():
            artifact = compile_problem(instance.assertions,
                                       instance.projection, digest="t")
            positions = set(range(len(artifact.flat_bits)))
            assert set(artifact.support) <= positions
            # unsimplified artifacts report the full support
            raw = compile_problem(instance.assertions,
                                  instance.projection, simplify=False,
                                  digest="t")
            assert list(raw.support) == sorted(positions)

    def test_lra_atoms_registered_in_reconstruction(self):
        x = bv_var("cpl_lx", 4)
        r = real_var("cpl_lr")
        assertions = [bv_ult(x, bv_val(9, 4)), real_lt(r, real_val(2))]
        artifact = compile_problem(assertions, [x], digest="t")
        assert artifact.atoms
        assert not artifact.persistable
        with pytest.raises(ValueError):
            artifact.to_payload()
        solver = SmtSolver.from_compiled(artifact)
        assert solver.lra.has_atoms()
        assert saturating_count(solver, [x], BIG, Deadline(60),
                                CallCounter()) == 9


class TestPayloadRoundTrip:
    def test_counts_survive_json(self):
        instance = _instances()[0]
        artifact = compile_problem(instance.assertions,
                                   instance.projection, digest="rt")
        assert artifact.persistable
        import json
        revived = CompiledProblem.from_payload(
            json.loads(json.dumps(artifact.to_payload())))
        assert revived.digest == "rt"
        assert revived.snapshot == artifact.snapshot
        assert revived.projection == artifact.projection
        assert revived.projection_bits == artifact.projection_bits
        assert _exact_via(revived) == instance.known_count

    def test_corrupt_payload_raises(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            CompiledProblem.from_payload({"version": 99})
        with pytest.raises((KeyError, TypeError, ValueError)):
            CompiledProblem.from_payload({"version": 1, "digest": "x"})


class TestDimacsExport:
    def test_round_trips_and_counts(self):
        instance = _instances()[0]
        artifact = compile_problem(instance.assertions,
                                   instance.projection, digest="t")
        text = artifact.to_dimacs()
        document = parse_dimacs_document(text)
        assert document.num_vars == artifact.num_vars
        assert document.show  # c p show lines present
        assert all(1 <= var <= document.num_vars
                   for var in document.show)
        # counting over the minimised support equals the known count
        solver = load_solver(text)
        count = 0
        while solver.solve(deadline=Deadline(60)):
            count += 1
            assert count <= BIG
            blocking = [-var if solver.model_value(var) else var
                        for var in document.show]
            if not solver.add_clause(blocking):
                break
        assert count == instance.known_count
