"""Property test: every simplify stage preserves the projected model
count, on small random instances across all six benchgen logics.

Ground truth is brute force: benchgen computes each instance's exact
projected count analytically at generation time (a Python predicate
enumerated over the whole projected domain), independently of the
solver stack.  For every stage prefix of the pipeline —

    ()  ->  (units)  ->  (units, equiv)  ->  (units, equiv, bve)

— compiling with exactly those stages and enumerating the projected
models of the reconstructed solver must reproduce that count.  The
``support`` stage is analysis-only; the projected count over the
*minimised* support must still equal the full count (dropped bits are
determined by the remaining ones).
"""

from hypothesis import given, settings, strategies as st

from repro.benchgen.generators import GENERATORS
from repro.compile import compile_problem
from repro.compile.simplify import STAGES
from repro.core.cells import CallCounter, saturating_count
from repro.smt.solver import SmtSolver
from repro.utils.deadline import Deadline

BIG = 10 ** 9
LOGICS = sorted(GENERATORS)
PREFIXES = [STAGES[:length] for length in range(len(STAGES) + 1)]


def _instance(logic, seed):
    return GENERATORS[logic](seed, width=4)


def _projected_count(artifact):
    solver = SmtSolver.from_compiled(artifact)
    return saturating_count(solver, list(artifact.projection), BIG,
                            Deadline(60), CallCounter())


@settings(max_examples=12, deadline=None)
@given(logic=st.sampled_from(LOGICS), seed=st.integers(0, 10 ** 6))
def test_each_stage_prefix_preserves_projected_count(logic, seed):
    instance = _instance(logic, seed)
    for stages in PREFIXES:
        artifact = compile_problem(
            instance.assertions, instance.projection,
            simplify=bool(stages), stages=stages, digest="prop")
        assert _projected_count(artifact) == instance.known_count, (
            f"{logic} seed={seed} stages={stages}")


@settings(max_examples=8, deadline=None)
@given(logic=st.sampled_from(LOGICS), seed=st.integers(0, 10 ** 6))
def test_minimised_support_preserves_count_on_cnf(logic, seed):
    """Counting over the minimised support bits (what ``c p show``
    exports) agrees with counting over the full projection whenever the
    CNF alone decides the formula (no lazy LRA atoms)."""
    instance = _instance(logic, seed)
    artifact = compile_problem(instance.assertions, instance.projection,
                               digest="prop")
    if artifact.atoms:
        return  # CNF alone under-constrains; export carries a warning
    solver = SmtSolver.from_compiled(artifact)
    flat = artifact.flat_bits
    support_vars = [abs(flat[position]) for position in artifact.support]
    sat = solver.sat
    count = 0
    sat.push()
    try:
        while sat.solve(deadline=Deadline(60)):
            count += 1
            assert count <= BIG
            blocking = [-var if sat.model_value(var) else var
                        for var in support_vars]
            if not blocking or not sat.add_clause(blocking):
                break
        assert count == instance.known_count
    finally:
        sat.pop()
