"""Unit tests for the CDM baseline's building blocks."""

import random

import pytest

from repro.core.cdm import _integer_root, compose_copies, _xor_hash_term
from repro.smt import (
    And, Equals, bv_add, bv_ult, bv_val, bv_var, real_lt, real_val,
    real_var,
)
from repro.smt.evaluator import evaluate
from repro.smt.model import free_variables


class TestComposeCopies:
    def test_copies_are_disjoint(self):
        x, y = bv_var("cc_x", 4), bv_var("cc_y", 4)
        assertions = [bv_ult(bv_add(x, y), bv_val(9, 4))]
        composed, projections = compose_copies(assertions, [x], 3)
        assert len(composed) == 3
        assert len(projections) == 3
        variable_sets = [free_variables(a) for a in composed]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (variable_sets[i] & variable_sets[j])

    def test_copy_preserves_structure(self):
        x = bv_var("cp_x", 4)
        assertions = [bv_ult(x, bv_val(5, 4))]
        composed, projections = compose_copies(assertions, [x], 2)
        for copy, projection in zip(composed, projections):
            var = projection[0]
            assert var.sort.width == 4
            # the copy is the same predicate over the renamed variable
            assert evaluate(copy, {var: 3}) is True
            assert evaluate(copy, {var: 7}) is False

    def test_hybrid_variables_renamed(self):
        x = bv_var("ch_x", 4)
        r = real_var("ch_r")
        assertions = [And(bv_ult(x, bv_val(5, 4)),
                          real_lt(r, real_val(1)))]
        composed, _ = compose_copies(assertions, [x], 2)
        names = {v.name for a in composed for v in free_variables(a)}
        assert "ch_r!c0" in names and "ch_r!c1" in names

    def test_single_copy_identity_semantics(self):
        x = bv_var("c1_x", 4)
        assertions = [bv_ult(x, bv_val(5, 4))]
        composed, projections = compose_copies(assertions, [x], 1)
        count = sum(1 for v in range(16)
                    if evaluate(composed[0], {projections[0][0]: v}))
        assert count == 5


class TestIntegerRoot:
    def test_exact_roots(self):
        assert _integer_root(8, 3) == 2
        assert _integer_root(81, 4) == 3
        assert _integer_root(1, 5) == 1

    def test_rounding(self):
        assert _integer_root(9, 3) == 2     # 2^3=8 closer than 3^3=27
        assert _integer_root(26, 3) == 3

    def test_degree_one_identity(self):
        assert _integer_root(123, 1) == 123

    def test_zero(self):
        assert _integer_root(0, 3) == 0

    @pytest.mark.parametrize("base,degree", [(7, 2), (13, 3), (99, 4)])
    def test_round_trip(self, base, degree):
        assert _integer_root(base ** degree, degree) == base

    def test_large_values_no_float_drift(self):
        base = 10 ** 6 + 3
        assert _integer_root(base ** 3, 3) == base


class TestCdmXorHash:
    def test_hash_term_is_bool(self):
        x = bv_var("cx_x", 6)
        rng = random.Random(3)
        term = _xor_hash_term([x], rng)
        assert term.sort.is_bool()

    def test_hash_halves_space_on_average(self):
        x = bv_var("cx_y", 6)
        fractions = []
        for seed in range(40):
            term = _xor_hash_term([x], random.Random(seed))
            members = sum(1 for v in range(64)
                          if evaluate(term, {x: v}))
            fractions.append(members / 64)
        mean = sum(fractions) / len(fractions)
        assert 0.35 <= mean <= 0.65

    def test_degenerate_empty_selection(self):
        x = bv_var("cx_z", 2)

        class ZeroRng:
            def random(self):
                return 0.9  # never selects a bit, rhs False

        term = _xor_hash_term([x], ZeroRng())
        # empty parity with rhs False is the constant True constraint
        assert evaluate(term, {x: 0}) is True
