"""SaturatingCounter and NextIndex (galloping search) tests."""

import threading

import pytest

from repro.core.cells import SATURATED, CallCounter, saturating_count
from repro.core.search import find_boundary
from repro.errors import CounterError
from repro.smt import SmtSolver, bv_val, bv_var, bv_ult
from repro.utils.deadline import Deadline


class TestSaturatingCounter:
    def make(self, bound):
        solver = SmtSolver()
        x = bv_var(f"sc_x{bound}", 6)
        solver.assert_term(bv_ult(x, bv_val(bound, 6)))
        return solver, x

    def test_small_cell_counted_exactly(self):
        solver, x = self.make(7)
        calls = CallCounter()
        result = saturating_count(solver, [x], 20, Deadline.unlimited(),
                                  calls)
        assert result == 7
        assert calls.solver_calls == 8  # 7 SAT + 1 UNSAT

    def test_saturation(self):
        solver, x = self.make(30)
        calls = CallCounter()
        result = saturating_count(solver, [x], 10, Deadline.unlimited(),
                                  calls)
        assert result is SATURATED
        assert calls.solver_calls == 10  # stops right at thresh

    def test_zero_solutions(self):
        solver = SmtSolver()
        x = bv_var("sc_zero", 4)
        solver.assert_term(bv_ult(x, bv_val(0, 4)))  # unsatisfiable
        calls = CallCounter()
        result = saturating_count(solver, [x], 5, Deadline.unlimited(),
                                  calls)
        assert result == 0

    def test_formula_untouched_after_count(self):
        solver, x = self.make(7)
        calls = CallCounter()
        saturating_count(solver, [x], 20, Deadline.unlimited(), calls)
        # Counting again gives the same answer: blocks were popped.
        result = saturating_count(solver, [x], 20, Deadline.unlimited(),
                                  calls)
        assert result == 7

    def test_exact_boundary_is_saturated(self):
        solver, x = self.make(10)
        calls = CallCounter()
        result = saturating_count(solver, [x], 10, Deadline.unlimited(),
                                  calls)
        assert result is SATURATED  # thresh solutions means >= thresh


class TestCallCounterAtomicity:
    def test_concurrent_records_never_undercount(self):
        """The thread-backend race: many threads hammering one counter
        must not drop increments (a bare += would)."""
        calls = CallCounter()
        threads = 8
        per_thread = 5000
        barrier = threading.Barrier(threads)

        def worker(thread_index):
            barrier.wait()
            for i in range(per_thread):
                calls.record(is_sat=(i + thread_index) % 2 == 0)

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert calls.solver_calls == threads * per_thread
        assert calls.sat_answers == threads * per_thread // 2

    def test_merge_is_atomic_under_concurrency(self):
        calls = CallCounter()
        threads = 8
        merges = 2000

        def worker():
            for _ in range(merges):
                calls.merge(3, 2)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert calls.solver_calls == threads * merges * 3
        assert calls.sat_answers == threads * merges * 2

    def test_pickle_roundtrip_drops_lock_keeps_counts(self):
        import pickle
        calls = CallCounter()
        calls.record(True)
        calls.record(False)
        clone = pickle.loads(pickle.dumps(calls))
        assert clone.solver_calls == 2
        assert clone.sat_answers == 1
        clone.record(True)  # still usable (fresh lock)
        assert clone.sat_answers == 2


class TestFindBoundary:
    def synthetic(self, sizes):
        """count_at built from a fixed cell-size profile."""
        probes = []

        def count_at(index):
            probes.append(index)
            return sizes[index] if sizes[index] < 10 else SATURATED

        return count_at, probes

    def test_simple_ascent(self):
        # counts halve per hash: 64 32 16 8 ...
        sizes = [64, 32, 16, 8, 4, 2, 1, 0, 0]
        count_at, probes = self.synthetic(sizes)
        index, value, cache = find_boundary(count_at, 1, 8)
        assert index == 3
        assert value == 8
        assert cache[2] is SATURATED

    def test_starts_from_previous_boundary(self):
        sizes = [99] * 12 + [5] + [2] * 4
        count_at, probes = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 12, 16)
        assert index == 12
        assert value == 5
        assert len(probes) <= 6  # gallop down + bisect: O(log start)

    def test_descends_when_start_too_deep(self):
        sizes = [64, 32, 16, 8, 4, 2, 1, 0, 0]
        count_at, probes = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 8, 8)
        assert index == 3
        assert value == 8

    def test_logarithmic_probe_count(self):
        """The section III-D claim: O(log |S|) oracle calls."""
        boundary = 37
        sizes = [99] * boundary + [3] + [1] * 30
        count_at, probes = self.synthetic(sizes)
        index, _, _ = find_boundary(count_at, 1, 64)
        assert index == boundary
        assert len(probes) <= 2 * 7 + 2  # ~2 log2(64)

    def test_downward_gallop_is_logarithmic_in_start(self):
        """start far above the boundary: halve down, then bisect —
        O(log start) probes, not a linear walk."""
        boundary = 5
        sizes = [99] * boundary + [4] + [1] * 59
        count_at, probes = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 60, 64)
        assert index == boundary
        assert value == 4
        assert len(probes) <= 2 * 7 + 2  # ~2 log2(64)

    def test_start_at_max_index_with_boundary_one(self):
        sizes = [99] + [3] * 16
        count_at, probes = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 16, 16)
        assert index == 1
        assert value == 3

    def test_start_just_above_boundary(self):
        sizes = [99] * 7 + [5] + [2] * 8
        count_at, probes = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 8, 16)
        assert index == 7
        assert value == 5
        assert len(probes) <= 5  # halve once to 4, bisect back up

    def test_boundary_independent_of_start(self):
        """The warm-start soundness premise: every start returns the
        same (boundary, cell count)."""
        sizes = [99] * 9 + [6] + [2] * 23
        results = set()
        for start in (1, 3, 9, 10, 15, 32):
            count_at, _ = self.synthetic(sizes)
            index, value, _ = find_boundary(count_at, start, 32)
            results.add((index, value))
        assert results == {(9, 6)}

    def test_start_clamped_into_range(self):
        sizes = [64, 32, 16, 8, 4, 2, 1, 0, 0]
        count_at, _ = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 50, 8)  # start > cap
        assert (index, value) == (3, 8)
        count_at, _ = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, -2, 8)  # start < 1
        assert (index, value) == (3, 8)

    def test_boundary_at_one(self):
        sizes = [99, 2, 1, 1]
        count_at, _ = self.synthetic(sizes)
        index, value, _ = find_boundary(count_at, 1, 3)
        assert index == 1 and value == 2

    def test_saturation_to_cap_raises(self):
        sizes = [99] * 9
        count_at, _ = self.synthetic(sizes)
        with pytest.raises(CounterError):
            find_boundary(count_at, 1, 8)

    def test_empty_projection_cap_raises(self):
        with pytest.raises(CounterError):
            find_boundary(lambda i: 0, 1, 0)
