"""The compile pipeline's determinism contract: estimates are
bit-identical with count-preserving simplification on vs off — for every
hash family and the CDM baseline, through every configuration layer the
knob threads (PactConfig, CountRequest, Preset, IterationSpec)."""

import pytest

from repro.api import CountRequest, Problem, Session
from repro.core import PactConfig, cdm_count, pact_count
from repro.engine.fanout import make_spec, run_iteration
from repro.engine.scheduler import slot_fingerprint
from repro.harness.presets import Preset
from repro.smt import bv_ult, bv_val, bv_var

FAMILIES = ("xor", "prime", "shift")


def _dense_formula(width, name):
    x = bv_var(name, width)
    bound = (1 << width) - (1 << (width - 3))
    return [bv_ult(x, bv_val(bound, width))], [x]


class TestPactConfigKnob:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_estimates_bit_identical_per_family(self, family):
        formula, projection = _dense_formula(10, f"cab_{family}")
        results = {}
        for simplify in (True, False):
            config = PactConfig(family=family, seed=11,
                                iteration_override=4, simplify=simplify)
            results[simplify] = pact_count(formula, projection, config)
        assert results[True].solved and results[False].solved
        assert results[True].estimates == results[False].estimates
        assert results[True].estimate == results[False].estimate

    def test_cdm_estimates_bit_identical(self):
        # epsilon=2 keeps the self-composition at q=2 copies so the A/B
        # stays fast; the knob path is identical at any scale.
        formula, projection = _dense_formula(6, "cab_cdm")
        on = cdm_count(formula, projection, epsilon=2.0, seed=11,
                       iteration_override=2, simplify=True)
        off = cdm_count(formula, projection, epsilon=2.0, seed=11,
                        iteration_override=2, simplify=False)
        assert on.solved and off.solved
        assert on.estimates == off.estimates


class TestCountRequestKnob:
    def test_session_counts_bit_identical(self):
        formula, projection = _dense_formula(10, "cab_req")
        problem = Problem.from_terms(formula, projection)
        with Session() as session:
            on = session.count(problem, CountRequest(
                counter="pact:xor", seed=11, iteration_override=4))
            off = session.count(problem, CountRequest(
                counter="pact:xor", seed=11, iteration_override=4,
                simplify=False))
        assert on.solved and off.solved
        assert on.estimates == off.estimates

    def test_cache_params_key_baseline_mode_only(self):
        default = CountRequest(counter="pact:xor")
        baseline = default.replace(simplify=False)
        assert "simplify" not in default.cache_params()
        assert baseline.cache_params()["simplify"] is False


class TestPresetKnob:
    def test_slot_fingerprints_distinguish_modes(self):
        from repro.benchgen.generators import GENERATORS
        instance = GENERATORS["QF_ABV"](5, width=4)
        default = Preset.smoke()
        baseline = Preset(name="smoke-nosimp", instances_per_logic=3,
                          timeout=3.0, iteration_override=3,
                          min_count=50, sat_budget=1.0, simplify=False)
        assert (slot_fingerprint(instance, "pact_xor", default)
                != slot_fingerprint(instance, "pact_xor", baseline))
        # and the default fingerprint is unchanged from pre-knob caches
        legacy = Preset.smoke()
        assert (slot_fingerprint(instance, "pact_xor", default)
                == slot_fingerprint(instance, "pact_xor", legacy))


class TestIterationSpecKnob:
    def test_worker_iterations_bit_identical(self):
        formula, projection = _dense_formula(10, "cab_spec")
        estimates = {}
        for simplify in (True, False):
            spec = make_spec("pact", formula, projection, epsilon=0.8,
                             delta=0.2, family="xor", seed=11,
                             simplify=simplify)
            assert spec.simplify is simplify
            assert spec.digest
            estimates[simplify] = [run_iteration(spec, index)
                                   for index in range(3)]
        assert estimates[True] == estimates[False]

    def test_parallel_matches_serial_with_baseline_mode(self):
        from repro.engine.pool import ExecutionPool
        formula, projection = _dense_formula(10, "cab_pool")
        config = PactConfig(family="xor", seed=11, iteration_override=4,
                            simplify=False)
        serial = pact_count(formula, projection, config)
        parallel = pact_count(formula, projection, config,
                              pool=ExecutionPool(jobs=2,
                                                 backend="thread"))
        assert serial.estimates == parallel.estimates
