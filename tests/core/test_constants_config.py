"""Algorithm 3 (GetConstants) and PactConfig validation."""

import math

import pytest

from repro.core import PactConfig, get_constants
from repro.errors import CounterError


class TestGetConstants:
    def test_paper_parameters_xor(self):
        """The paper's setting: eps = 0.8, delta = 0.2 (section IV)."""
        thresh, iterations, slice_width = get_constants(0.8, 0.2, "xor")
        expected_thresh = 1 + math.ceil(
            9.84 * (1 + 0.8 / 1.8) * (1 + 1 / 0.8) ** 2)
        assert thresh == expected_thresh
        assert iterations == math.ceil(17 * math.log(3 / 0.2))
        assert slice_width == 1

    def test_paper_parameters_word_level(self):
        for family in ("prime", "shift"):
            thresh, iterations, slice_width = get_constants(0.8, 0.2,
                                                            family)
            assert iterations == math.ceil(23 * math.log(3 / 0.2))
            assert slice_width == 4

    def test_thresh_decreases_with_epsilon(self):
        loose = get_constants(2.0, 0.2, "xor")[0]
        tight = get_constants(0.3, 0.2, "xor")[0]
        assert loose < tight

    def test_iterations_grow_with_confidence(self):
        few = get_constants(0.8, 0.5, "xor")[1]
        many = get_constants(0.8, 0.01, "xor")[1]
        assert few < many

    def test_xor_needs_fewer_iterations(self):
        # 17 log(3/d) vs 23 log(3/d)
        assert (get_constants(0.8, 0.2, "xor")[1]
                < get_constants(0.8, 0.2, "prime")[1])


class TestPactConfig:
    def test_defaults_match_paper(self):
        config = PactConfig()
        assert config.epsilon == 0.8
        assert config.delta == 0.2
        assert config.family == "xor"

    def test_bad_epsilon(self):
        with pytest.raises(CounterError):
            PactConfig(epsilon=0)

    def test_bad_delta(self):
        with pytest.raises(CounterError):
            PactConfig(delta=1.0)

    def test_bad_family(self):
        with pytest.raises(CounterError):
            PactConfig(family="fnv")

    def test_bad_override(self):
        with pytest.raises(CounterError):
            PactConfig(iteration_override=0)
