"""End-to-end counter tests: pact (all families), CDM, enum.

Ground truths come from the enum counter or closed forms; pact estimates
must fall within the theoretical (1+epsilon) band (with margin to spare —
the paper observes average error ~0.03, far below 0.8).
"""

import pytest

from repro import cdm_count, count_projected, exact_count
from repro.errors import CounterError
from repro.smt import (
    And, Equals, Implies, Not, Or, bv_add, bv_and, bv_extract, bv_mul,
    bv_ult, bv_val, bv_var, bv_xor, real_lt, real_val, real_var,
)
from repro.utils.stats import relative_error

EPSILON = 0.8


def within_tolerance(exact, estimate, epsilon=EPSILON):
    return relative_error(exact, estimate) <= epsilon


class TestEnum:
    def test_interval(self):
        x = bv_var("en_x", 8)
        result = exact_count([bv_ult(x, bv_val(77, 8))], [x])
        assert result.estimate == 77
        assert result.exact

    def test_projection_collapses_witnesses(self):
        x, y = bv_var("en_px", 4), bv_var("en_py", 4)
        # x = y & 0b1100: x ranges over {0,4,8,12}, many y witnesses each.
        result = exact_count(
            [Equals(x, bv_and(y, bv_val(0b1100, 4)))], [x])
        assert result.estimate == 4

    def test_unsat_formula(self):
        x = bv_var("en_ux", 4)
        result = exact_count([bv_ult(x, bv_val(0, 4))], [x])
        assert result.estimate == 0

    def test_limit(self):
        x = bv_var("en_lx", 8)
        result = exact_count([bv_ult(x, bv_val(200, 8))], [x], limit=50)
        assert result.status == "limit"
        assert result.estimate is None

    def test_limit_surfaces_partial_count_as_lower_bound(self):
        """The partial enumeration is not thrown away: the LIMIT result
        keeps its accounting and states the lower bound in detail."""
        x = bv_var("en_lbx", 8)
        result = exact_count([bv_ult(x, bv_val(200, 8))], [x], limit=50)
        # 51 models were enumerated before the cap tripped.
        assert "at least 51 projected solutions" in result.detail
        assert "lower bound" in result.detail
        assert result.solver_calls == 51
        assert result.time_seconds > 0
        assert not result.solved

    def test_limit_not_tripped_exactly_at_count(self):
        """limit == exact count must finish OK (the cap is strict)."""
        x = bv_var("en_lex", 8)
        result = exact_count([bv_ult(x, bv_val(50, 8))], [x], limit=50)
        assert result.status == "ok"
        assert result.estimate == 50


class TestPactSmallExact:
    """Line 3-4 of Algorithm 1: small spaces are counted exactly."""

    @pytest.mark.parametrize("family", ["xor", "prime", "shift"])
    def test_small_space_short_circuits(self, family):
        x = bv_var(f"px_{family}", 6)
        result = count_projected([bv_ult(x, bv_val(9, 6))], [x],
                                 family=family, seed=2)
        assert result.exact
        assert result.estimate == 9

    def test_unsat_gives_zero(self):
        x = bv_var("pz_x", 6)
        result = count_projected(
            [And(bv_ult(x, bv_val(3, 6)), bv_ult(bv_val(5, 6), x))], [x],
            family="xor", seed=2)
        assert result.estimate == 0
        assert result.exact


class TestPactAccuracy:
    CASES = [
        # (name, width, builder(x), exact count)
        ("interval", 8, lambda x: bv_ult(x, bv_val(200, 8)), 200),
        ("stripe", 8,
         lambda x: Equals(bv_and(x, bv_val(3, 8)), bv_val(1, 8)), 64),
        ("union", 8,
         lambda x: Or(bv_ult(x, bv_val(100, 8)),
                      bv_ult(bv_val(180, 8), x)), 175),
    ]

    @pytest.mark.parametrize("family", ["xor", "prime", "shift"])
    @pytest.mark.parametrize("name,width,builder,exact",
                             CASES, ids=[c[0] for c in CASES])
    def test_estimate_within_band(self, family, name, width, builder,
                                  exact):
        x = bv_var(f"pa_{family}_{name}", width)
        result = count_projected([builder(x)], [x], family=family,
                                 seed=7, iteration_override=7)
        assert result.solved
        assert within_tolerance(exact, result.estimate), (
            f"{family}/{name}: {result.estimate} vs {exact}")

    def test_multi_variable_projection(self):
        x, y = bv_var("pm_x", 4), bv_var("pm_y", 4)
        formula = bv_ult(bv_add(x, y), bv_val(8, 4))
        truth = exact_count([formula], [x, y]).estimate
        result = count_projected([formula], [x, y], family="xor",
                                 seed=3, iteration_override=7)
        assert within_tolerance(truth, result.estimate)

    def test_projection_with_witness_variables(self):
        x, y = bv_var("pw_x", 6), bv_var("pw_y", 6)
        formula = Equals(x, bv_mul(y, bv_val(2, 6)))  # x even
        result = count_projected([formula], [x], family="xor",
                                 seed=5, iteration_override=7)
        assert within_tolerance(32, result.estimate)

    def test_hybrid_bv_real_counting(self):
        """The headline capability: count BV projections of a hybrid
        formula with continuous witnesses."""
        x = bv_var("ph_x", 6)
        r = real_var("ph_r")
        # r strictly between 0 and 1 always possible; x < 40 required;
        # additionally x < 20 must imply r < 1/2 (always satisfiable).
        formula = [
            real_lt(real_val(0), r), real_lt(r, real_val(1)),
            bv_ult(x, bv_val(40, 6)),
            Implies(bv_ult(x, bv_val(20, 6)),
                    real_lt(r, real_val("1/2"))),
        ]
        truth = exact_count(formula, [x]).estimate
        assert truth == 40
        result = count_projected(formula, [x], family="xor", seed=4,
                                 iteration_override=7)
        assert within_tolerance(40, result.estimate)

    def test_median_stabilises_estimates(self):
        x = bv_var("ps_x", 8)
        formula = [bv_ult(x, bv_val(200, 8))]
        estimates = [
            count_projected(formula, [x], family="xor", seed=seed,
                            iteration_override=7).estimate
            for seed in range(5)
        ]
        for estimate in estimates:
            assert within_tolerance(200, estimate)


class TestPactApi:
    def test_single_term_accepted(self):
        x = bv_var("api_x", 5)
        result = count_projected(bv_ult(x, bv_val(5, 5)), [x])
        assert result.estimate == 5

    def test_empty_projection_rejected(self):
        x = bv_var("api_y", 5)
        with pytest.raises(CounterError):
            count_projected([bv_ult(x, bv_val(5, 5))], [])

    def test_non_bv_projection_rejected(self):
        r = real_var("api_r")
        x = bv_var("api_z", 5)
        with pytest.raises(CounterError):
            count_projected([bv_ult(x, bv_val(5, 5))], [r])

    def test_duplicate_projection_deduped(self):
        """A repeated projection variable must not double-count its bits
        (it would inflate total_bits and break pairwise independence)."""
        x = bv_var("api_dup", 8)
        formula = [bv_ult(x, bv_val(200, 8))]
        deduped = count_projected(formula, [x, x, x], family="xor",
                                  seed=7, iteration_override=3)
        clean = count_projected(formula, [x], family="xor", seed=7,
                                iteration_override=3)
        assert deduped.estimates == clean.estimates

    def test_duplicate_projection_multi_var_order_preserved(self):
        x, y = bv_var("api_d2x", 4), bv_var("api_d2y", 4)
        formula = bv_ult(bv_add(x, y), bv_val(8, 4))
        truth = exact_count([formula], [x, y]).estimate
        result = count_projected([formula], [x, y, x, y], family="xor",
                                 seed=3, iteration_override=7)
        clean = count_projected([formula], [x, y], family="xor",
                                seed=3, iteration_override=7)
        assert result.estimates == clean.estimates
        assert within_tolerance(truth, result.estimate)

    def test_timeout_reported(self):
        x, y = bv_var("api_tx", 14), bv_var("api_ty", 14)
        result = count_projected(
            [Equals(bv_mul(x, y), bv_val(9973, 14))], [x, y],
            family="prime", timeout=0.05)
        assert result.status == "timeout"
        assert result.estimate is None

    def test_timeout_reports_partial_iterations(self):
        """On timeout the result records the iterations that DID finish
        (count and per-iteration estimates stay consistent)."""
        x = bv_var("api_px", 10)
        formula = [bv_ult(x, bv_val(900, 10))]
        full = count_projected(formula, [x], family="xor", seed=3,
                               iteration_override=4)
        assert full.status == "ok"
        # A budget that fits roughly half the full run cuts the loop
        # mid-way: some iterations complete, the rest are abandoned.
        result = count_projected(formula, [x], family="xor", seed=3,
                                 iteration_override=4,
                                 timeout=full.time_seconds / 2)
        assert result.iterations == len(result.estimates)
        if result.status == "timeout":
            assert result.estimate is None
            assert result.iterations < 4
            assert result.estimates == full.estimates[:result.iterations]

    def test_solver_call_accounting(self):
        x = bv_var("api_cx", 8)
        result = count_projected([bv_ult(x, bv_val(150, 8))], [x],
                                 family="xor", iteration_override=3)
        assert result.solver_calls > 0
        assert result.sat_answers <= result.solver_calls


class TestCdm:
    def test_small_space_exact(self):
        x = bv_var("cdm_sx", 6)
        result = cdm_count([bv_ult(x, bv_val(3, 6))], [x],
                           iteration_override=2)
        assert result.exact
        assert result.estimate == 3

    def test_accuracy_on_interval(self):
        x = bv_var("cdm_ax", 7)
        result = cdm_count([bv_ult(x, bv_val(90, 7))], [x], seed=2,
                           iteration_override=3)
        assert result.solved
        assert within_tolerance(90, result.estimate)

    # a wall-clock comparison of two full counter runs — slow-job fare
    @pytest.mark.slow
    def test_cdm_slower_than_pact_xor(self):
        """The paper's central performance claim, at miniature scale."""
        x = bv_var("cdm_px", 7)
        formula = [bv_ult(x, bv_val(90, 7))]
        pact_result = count_projected(formula, [x], family="xor",
                                      seed=1, iteration_override=3)
        cdm_result = cdm_count(formula, [x], seed=1,
                               iteration_override=3)
        assert pact_result.time_seconds < cdm_result.time_seconds

    def test_timeout(self):
        x = bv_var("cdm_tx", 12)
        result = cdm_count(
            [Equals(bv_mul(x, x), bv_val(1024, 12))], [x], timeout=0.05)
        assert result.status == "timeout"
