"""Hash family tests: slicing, partition balance, pairwise independence."""

import random

import pytest

from repro.core.hashes import generate_hash
from repro.core.slicing import slice_projection, slice_variable, total_bits
from repro.smt import SmtSolver, bv_var
from repro.smt.evaluator import evaluate
from repro.utils.primes import is_prime


class TestSlicing:
    def test_exact_division(self):
        x = bv_var("sl_x", 8)
        slices = slice_variable(x, 4)
        assert len(slices) == 2
        assert all(s.sort.width == 4 for s in slices)
        # value reconstruction: x = 0xAB -> slices [0xB, 0xA]
        assert [evaluate(s, {x: 0xAB}) for s in slices] == [0xB, 0xA]

    def test_ragged_tail_zero_extended(self):
        x = bv_var("sl_y", 10)
        slices = slice_variable(x, 4)
        assert len(slices) == 3
        assert all(s.sort.width == 4 for s in slices)
        value = 0b10_1101_0110
        assert [evaluate(s, {x: value}) for s in slices] == [
            0b0110, 0b1101, 0b10]

    def test_width_one_slices(self):
        x = bv_var("sl_z", 5)
        slices = slice_variable(x, 1)
        assert len(slices) == 5
        assert [evaluate(s, {x: 0b10110}) for s in slices] == [0, 1, 1, 0, 1]

    def test_projection_flattening(self):
        x, y = bv_var("sl_a", 6), bv_var("sl_b", 3)
        slices = slice_projection([x, y], 4)
        assert len(slices) == 2 + 1
        assert total_bits([x, y]) == 9


def hash_value(constraint, assignment, projection):
    """Evaluate whether a concrete projected point satisfies the hash."""
    if constraint.family == "xor":
        bits = []
        for var in projection:
            value = assignment[var]
            for position in range(var.sort.width):
                bits.append((value >> position) & 1)
        parity = 0
        for index in constraint.xor_bit_positions:
            parity ^= bits[index]
        return parity == (1 if constraint.xor_rhs else 0)
    return evaluate(constraint.term, assignment)


@pytest.mark.parametrize("family", ["xor", "prime", "shift"])
class TestHashFamilies:
    def test_partition_counts(self, family):
        x = bv_var(f"hf_{family}", 8)
        rng = random.Random(1)
        constraint = generate_hash([x], 4, family, rng)
        if family == "xor":
            assert constraint.partitions == 2
        elif family == "prime":
            assert is_prime(constraint.partitions)
            assert constraint.partitions > 16
        else:
            assert constraint.partitions == 16

    def test_cells_partition_the_space(self, family):
        """Summing |cell| over all alpha must give the whole space.

        Verified semantically: for each concrete x, exactly one alpha
        matches — i.e. the constraint holds for a 1/partitions fraction.
        """
        x = bv_var(f"hp_{family}", 6)
        rng = random.Random(7)
        constraint = generate_hash([x], 4, family, rng)
        members = sum(
            1 for value in range(64)
            if hash_value(constraint, {x: value}, [x]))
        # Balance within a generous statistical margin.
        expected = 64 / constraint.partitions
        assert members > 0 or expected < 1.5
        assert abs(members - expected) <= max(8, expected)

    def test_average_split_is_uniform(self, family):
        """Over many random hashes, the mean cell fraction must approach
        1/partitions (pairwise independence implies uniformity)."""
        x = bv_var(f"hu_{family}", 6)
        fractions = []
        for seed in range(60):
            rng = random.Random(seed)
            constraint = generate_hash([x], 4, family, rng)
            members = sum(
                1 for value in range(64)
                if hash_value(constraint, {x: value}, [x]))
            fractions.append(members / 64 * constraint.partitions)
        mean = sum(fractions) / len(fractions)
        assert 0.8 <= mean <= 1.2

    def test_deterministic_under_seed(self, family):
        x = bv_var(f"hd_{family}", 8)
        first = generate_hash([x], 4, family, random.Random(5))
        second = generate_hash([x], 4, family, random.Random(5))
        if family == "xor":
            assert first.xor_bit_positions == second.xor_bit_positions
            assert first.xor_rhs == second.xor_rhs
        else:
            assert first.term is second.term  # interning: same structure

    def test_assert_into_restricts_solutions(self, family):
        """Asserting the hash must carve out exactly its semantic cell."""
        x = bv_var(f"ha_{family}", 5)
        rng = random.Random(11)
        constraint = generate_hash([x], 4, family, rng)
        solver = SmtSolver()
        bits = solver.ensure_bits(x)
        solver.push()
        constraint.assert_into(solver, bits)
        solutions = set()
        while solver.check():
            value = solver.bv_value(x)
            solutions.add(value)
            blocking = [-bits[i] if (value >> i) & 1 else bits[i]
                        for i in range(5)]
            solver.add_clause_lits(blocking)
            assert len(solutions) <= 32
        solver.pop()
        expected = {value for value in range(32)
                    if hash_value(constraint, {x: value}, [x])}
        assert solutions == expected


class TestPairwiseIndependence:
    """Empirical 2-universality: Pr[h(x1) = h(x2)] ~ 1/m for x1 != x2."""

    @pytest.mark.parametrize("family", ["xor", "prime", "shift"])
    def test_collision_probability(self, family):
        x = bv_var(f"pi_{family}", 6)
        x1, x2 = 13, 46
        collisions = 0
        trials = 200
        partitions = None
        for seed in range(trials):
            rng = random.Random(seed)
            constraint = generate_hash([x], 4, family, rng)
            partitions = constraint.partitions
            in1 = hash_value(constraint, {x: x1}, [x])
            in2 = hash_value(constraint, {x: x2}, [x])
            if in1 and in2:
                collisions += 1
        # Pr[both in the alpha-cell] = 1/m^2; over trials with random
        # alpha, Pr[h(x1)=alpha and h(x2)=alpha] = 1/m^2 summed over...
        # simpler check: joint membership should be ~ trials/m^2.
        expected = trials / (partitions ** 2)
        assert collisions <= expected * 4 + 6
