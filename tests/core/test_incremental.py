"""The incremental hash-ladder layer (section III-F).

The determinism contract: warm starts and ladder frames change the probe
*order*, learnt-clause retention changes solver *speed* — none of them
may change per-iteration estimates, which are pure functions of
(formula, config, iteration index).  The cold path
(``incremental=False``: search start 1 every iteration, no retention)
reproduces the pre-ladder implementation probe-for-probe, so equality
against it is equality against the seed behaviour.
"""

import pytest

from repro.core import HashLadder, PactConfig, cdm_count, pact_count
from repro.core.cells import CallCounter, saturating_count
from repro.engine.pool import ExecutionPool
from repro.errors import CounterError
from repro.smt import SmtSolver, bv_ult, bv_val, bv_var
from repro.utils.deadline import Deadline

FAMILIES = ("xor", "prime", "shift")


def _dense_formula(width, name):
    x = bv_var(name, width)
    bound = (1 << width) - (1 << (width - 3))
    return [bv_ult(x, bv_val(bound, width))], [x]


def _run(formula, projection, family, incremental, iterations=4):
    config = PactConfig(family=family, seed=11,
                        iteration_override=iterations,
                        incremental=incremental)
    return pact_count(formula, projection, config)


class TestBitIdenticalEstimates:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_warm_start_never_changes_estimates(self, family):
        formula, projection = _dense_formula(10, f"inc_{family}")
        warm = _run(formula, projection, family, incremental=True)
        cold = _run(formula, projection, family, incremental=False)
        assert warm.solved and cold.solved
        assert warm.estimates == cold.estimates
        assert warm.estimate == cold.estimate

    def test_warm_start_reduces_solver_calls(self):
        # Deep boundaries (wide dense space) is where galloping from the
        # previous boundary beats doubling up from index 1.
        formula, projection = _dense_formula(14, "inc_calls")
        warm = _run(formula, projection, "xor", incremental=True,
                    iterations=5)
        cold = _run(formula, projection, "xor", incremental=False,
                    iterations=5)
        assert warm.estimates == cold.estimates
        assert warm.solver_calls < cold.solver_calls

    def test_fanout_workers_match_serial_with_warm_chains(self):
        formula, projection = _dense_formula(10, "inc_fan")
        serial = _run(formula, projection, "xor", incremental=True,
                      iterations=4)
        config = PactConfig(family="xor", seed=11, iteration_override=4)
        fanned = pact_count(formula, projection, config,
                            pool=ExecutionPool(2, "thread"))
        assert fanned.estimates == serial.estimates

    def test_cdm_ladder_matches_known_count(self):
        x = bv_var("inc_cdm", 7)
        result = cdm_count([bv_ult(x, bv_val(90, 7))], [x], seed=2,
                           iteration_override=3)
        assert result.solved
        assert abs(result.estimate - 90) <= 0.8 * 90


class TestHashLadder:
    def _solver(self):
        solver = SmtSolver()
        x = bv_var("hl_x", 6)
        solver.assert_term(bv_ult(x, bv_val(50, 6)))
        bits = solver.ensure_bits(x)
        return solver, x, bits

    def test_moves_are_deltas(self):
        solver, x, bits = self._solver()
        asserted = []

        def assert_hash(s, index):
            asserted.append(index)
            s.assert_xor_bits([bits[index % len(bits)]], False)

        ladder = HashLadder(solver, assert_hash)
        ladder.set_depth(3)
        assert asserted == [1, 2, 3]
        ladder.set_depth(5)
        assert asserted == [1, 2, 3, 4, 5]
        ladder.set_depth(2)          # pops only, no re-assertion
        assert asserted == [1, 2, 3, 4, 5]
        assert ladder.depth == 2
        ladder.set_depth(4)          # re-ascends 3 and 4 freshly
        assert asserted == [1, 2, 3, 4, 5, 3, 4]
        ladder.close()
        assert ladder.depth == 0
        assert solver.frame_depth == 0

    def test_counts_match_rebuild(self):
        """Ladder probes give the same cell counts as per-probe rebuild."""
        solver, x, bits = self._solver()
        reference = SmtSolver()
        rx = bv_var("hl_rx", 6)
        reference.assert_term(bv_ult(rx, bv_val(50, 6)))
        rbits = reference.ensure_bits(rx)

        def hash_positions(index):
            return [(index * 3 + k) % 6 for k in range(2)]

        ladder = HashLadder(
            solver,
            lambda s, i: s.assert_xor_bits(
                [bits[p] for p in hash_positions(i)], False))
        for index in (2, 4, 1, 3, 2):
            ladder.set_depth(index)
            calls = CallCounter()
            got = saturating_count(solver, [x], 64, Deadline.unlimited(),
                                   calls)
            reference.push()
            for j in range(1, index + 1):
                reference.assert_xor_bits(
                    [rbits[p] for p in hash_positions(j)], False)
            rcalls = CallCounter()
            want = saturating_count(reference, [rx], 64,
                                    Deadline.unlimited(), rcalls)
            reference.pop()
            assert got == want
        ladder.close()

    def test_negative_depth_rejected(self):
        solver, _, _ = self._solver()
        ladder = HashLadder(solver, lambda s, i: None)
        with pytest.raises(CounterError):
            ladder.set_depth(-1)
