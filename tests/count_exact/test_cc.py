"""The exact component-caching counter: search, cache, closure, API."""

import random

import pytest

from repro.api import CountRequest, Problem, resolve
from repro.compile import CompiledProblem
from repro.count_exact import (
    MAX_CLOSURE_ATOMS, cc_count, component_signature, count_compiled,
    lra_closure, projection_occurrences,
)
from repro.errors import CounterError
from repro.sat.components import ConstraintGraph, UNSET_V
from repro.sat.solver import SatSolver
from repro.smt import (
    And, Equals, Implies, bv_and, bv_ult, bv_val, bv_var, real_lt,
    real_val, real_var,
)
from repro.smt.terms import bv_var as _bv_var
from repro.status import Status


class TestCounts:
    def test_interval(self):
        x = bv_var("cc_x", 8)
        result = cc_count([bv_ult(x, bv_val(77, 8))], [x])
        assert result.estimate == 77
        assert result.exact
        assert result.status is Status.OK

    def test_unsat(self):
        x = bv_var("cc_ux", 4)
        result = cc_count([bv_ult(x, bv_val(0, 4))], [x])
        assert result.estimate == 0
        assert result.exact

    def test_unconstrained_bits_are_free(self):
        # Only the low 2 bits are constrained; 6 bits are free doublers.
        x = bv_var("cc_fx", 8)
        result = cc_count(
            [Equals(bv_and(x, bv_val(0b11, 8)), bv_val(0b01, 8))], [x])
        assert result.estimate == 1 << 6
        assert "free_bits" in result.detail

    def test_projection_collapses_witnesses(self):
        x, y = bv_var("cc_px", 4), bv_var("cc_py", 4)
        result = cc_count([Equals(x, bv_and(y, bv_val(0b1100, 4)))], [x])
        assert result.estimate == 4

    def test_multi_variable_projection(self):
        x, y = bv_var("cc_mx", 3), bv_var("cc_my", 3)
        result = cc_count(
            [bv_ult(x, bv_val(3, 3)), bv_ult(y, bv_val(5, 3))], [x, y])
        assert result.estimate == 15

    def test_simplify_ab_is_bit_identical(self):
        x = bv_var("cc_ab", 9)
        assertions = [bv_ult(x, bv_val(397, 9))]
        on = cc_count(assertions, [x], simplify=True)
        off = cc_count(assertions, [x], simplify=False)
        assert on.estimate == off.estimate == 397

    def test_deterministic_stats(self):
        x = bv_var("cc_det", 10)
        assertions = [bv_ult(x, bv_val(700, 10))]
        first = cc_count(assertions, [x])
        second = cc_count(assertions, [x])
        assert first.estimate == second.estimate == 700
        assert first.solver_calls == second.solver_calls
        assert first.detail == second.detail

    def test_timeout_reports_timeout(self):
        x = bv_var("cc_to", 16)
        result = cc_count([bv_ult(x, bv_val(60_000, 16))], [x], timeout=0)
        assert result.status is Status.TIMEOUT
        assert result.estimate is None


class TestLraClosure:
    def test_pruning_constraint_counts_exactly(self):
        # r > 7 always; bit0 -> r < 3: impossible, so bit0 = 0.
        x = bv_var("cc_lx", 4)
        r = real_var("cc_lr")
        bit0 = Equals(bv_and(x, bv_val(1, 4)), bv_val(1, 4))
        assertions = [real_lt(real_val(7), r),
                      Implies(bit0, real_lt(r, real_val(3)))]
        result = cc_count(assertions, [x])
        assert result.estimate == 8
        assert "closure=" in result.detail

    def test_witness_constraint_keeps_count(self):
        x = bv_var("cc_wx", 4)
        r1, r2 = real_var("cc_wr1"), real_var("cc_wr2")
        assertions = [bv_ult(x, bv_val(11, 4)),
                      And(real_lt(real_val(0), r1), real_lt(r1, r2))]
        result = cc_count(assertions, [x])
        assert result.estimate == 11

    def test_closure_blocks_infeasible_vectors_only(self):
        r = real_var("cc_cr")
        atoms = []
        solver_atoms = [real_lt(real_val(5), r), real_lt(r, real_val(2))]
        for index, atom in enumerate(solver_atoms):
            atoms.append((atom, index + 1))
        stats = lra_closure(atoms)
        assert stats.atoms == 2
        # exactly one vector (both true: 5 < r < 2) is infeasible
        assert stats.infeasible == 1
        assert stats.clauses == [[-2, -1]]

    def test_closure_polls_the_deadline(self):
        from repro.errors import SolverTimeoutError
        from repro.utils.deadline import Deadline
        r = real_var("cc_dlr")
        atoms = [(real_lt(real_val(i), r), i + 1) for i in range(3)]
        with pytest.raises(SolverTimeoutError):
            lra_closure(atoms, deadline=Deadline(0))

    def test_closure_atom_cap(self):
        r = real_var("cc_capr")
        atoms = [(real_lt(real_val(i), r), i + 1)
                 for i in range(MAX_CLOSURE_ATOMS + 1)]
        with pytest.raises(CounterError):
            lra_closure(atoms)


class TestSignature:
    def test_signature_is_order_independent(self):
        graph = ConstraintGraph(4, [[3, 4], [1, 2]])
        values = [UNSET_V] * 5
        components, _ = graph.split(values, range(1, 5))
        (first, second) = components
        sig_first = component_signature(graph, values, first)
        sig_second = component_signature(graph, values, second)
        assert sig_first == (("c", (1, 2)),)
        assert sig_second == (("c", (3, 4)),)

    def test_occurrences_follow_projection(self):
        signature = (("c", (1, -2)), ("c", (2, 3)), ("x", (2, 4), True))
        occurrences = projection_occurrences(signature, frozenset({2, 4}))
        assert occurrences == {2: 3, 4: 1}


def _cnf_artifact(num_vars, clauses, xors, projection_vars):
    """A synthetic CompiledProblem over raw SAT variables (the search
    never looks at terms, only at the snapshot + projection bits)."""
    solver = SatSolver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    for variables, rhs in xors:
        solver.add_xor(list(variables), rhs)
    term = _bv_var("cc_raw", max(1, len(projection_vars)))
    return CompiledProblem(
        digest="cc_raw", snapshot=solver.snapshot(), true_lit=0,
        projection=(term,),
        projection_bits=(tuple(projection_vars),), simplified=False)


def _brute_force(num_vars, clauses, xors, projection_vars):
    projected = set()
    for model in range(1 << num_vars):
        def lit_true(lit):
            var = abs(lit)
            value = bool((model >> (var - 1)) & 1)
            return value if lit > 0 else not value
        if not all(any(lit_true(lit) for lit in clause)
                   for clause in clauses):
            continue
        if not all(sum(lit_true(v) for v in variables) % 2 == rhs
                   for variables, rhs in xors):
            continue
        projected.add(tuple((model >> (v - 1)) & 1
                            for v in projection_vars))
    return len(projected)


class TestRandomCnfXorAgainstBruteForce:
    """Random clause DBs (CNF + native XOR rows, random projection):
    the search must agree with brute-force projected enumeration —
    this is the direct oracle for the component/cache/XOR machinery,
    independent of the compile pipeline."""

    @pytest.mark.parametrize("seed", range(40))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        clauses = []
        for _ in range(rng.randint(2, 14)):
            size = rng.randint(1, 3)
            clauses.append([rng.choice((1, -1)) * rng.randint(1, num_vars)
                            for _ in range(size)])
        xors = []
        for _ in range(rng.randint(0, 3)):
            width = rng.randint(2, min(4, num_vars))
            xors.append((tuple(rng.sample(range(1, num_vars + 1), width)),
                         bool(rng.getrandbits(1))))
        projection = sorted(rng.sample(
            range(1, num_vars + 1), rng.randint(1, num_vars)))
        expected = _brute_force(num_vars, clauses, xors, projection)
        artifact = _cnf_artifact(num_vars, clauses, xors, projection)
        result = count_compiled(artifact)
        assert result.estimate == expected, (
            f"seed {seed}: cc={result.estimate} brute={expected} "
            f"clauses={clauses} xors={xors} projection={projection}")


class TestApiIntegration:
    def test_registry_resolution(self):
        assert resolve("exact:cc").name == "exact:cc"
        assert resolve("cc").name == "exact:cc"
        assert resolve("exact_cc").name == "exact:cc"

    def test_counter_through_registry(self):
        x = bv_var("cc_reg", 8)
        problem = Problem.from_terms([bv_ult(x, bv_val(100, 8))], [x],
                                     name="cc_reg")
        response = resolve("exact:cc").count(
            problem, CountRequest(counter="exact:cc"))
        assert response.estimate == 100
        assert response.exact
        assert response.counter == "exact:cc"

    def test_shares_the_pact_compile_artifact(self):
        from repro.compile import compile_counters
        x = bv_var("cc_share", 8)
        problem = Problem.from_terms([bv_ult(x, bv_val(50, 8))], [x],
                                     name="cc_share")
        resolve("exact:cc").count(problem,
                                  CountRequest(counter="exact:cc"))
        builds = compile_counters()["per_key"]
        key = (problem.compile_key, "pact", True)
        before = builds.get(key, 0)
        resolve("pact:xor").count(
            problem, CountRequest(counter="pact:xor", seed=3))
        after = compile_counters()["per_key"].get(key, 0)
        assert after == before  # pact reused exact:cc's artifact

    def test_count_compiled_from_artifact(self):
        x = bv_var("cc_art", 8)
        problem = Problem.from_terms([bv_ult(x, bv_val(42, 8))], [x],
                                     name="cc_art")
        artifact = problem.compile()
        result = count_compiled(artifact)
        assert result.estimate == 42

    def test_thread_backend_batch(self):
        """Concurrent exact:cc counts on the thread backend: the
        process-global recursion limit is raised monotonically, never
        restored, so no count can yank it from under another."""
        from repro.api import Session
        problems = []
        expected = []
        for index, bound in enumerate((37, 99, 150, 201)):
            x = bv_var(f"cc_batch{index}", 8)
            problems.append(Problem.from_terms(
                [bv_ult(x, bv_val(bound, 8))], [x],
                name=f"cc_batch{index}"))
            expected.append(bound)
        with Session(jobs=2, backend="thread") as session:
            responses = session.count_batch(
                problems, CountRequest(counter="exact:cc"))
        assert [response.estimate for response in responses] == expected
        assert all(response.exact for response in responses)

    def test_session_persists_component_cache_stats(self, tmp_path):
        """The engine cache keeps the run's cc stats: the cached entry
        (and the response replayed from it) carries the detail string."""
        from repro.api import Session
        x = bv_var("cc_sess", 8)
        problem = Problem.from_terms([bv_ult(x, bv_val(99, 8))], [x],
                                     name="cc_sess")
        request = CountRequest(counter="exact:cc")
        with Session(cache_dir=tmp_path / "cache") as session:
            first = session.count(problem, request)
        assert not first.cached and first.detail.startswith("cc: ")
        with Session(cache_dir=tmp_path / "cache") as session:
            second = session.count(problem, request)
        assert second.cached
        assert second.estimate == first.estimate == 99
        assert second.detail == first.detail
