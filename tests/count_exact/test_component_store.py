"""The disk-backed component store: codec, masks, merge-on-write,
corruption tolerance, cross-process sharing and the purge-on-zero
persistence discipline."""

import sqlite3
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.count_exact.counter import CcStats, count_snapshot
from repro.count_exact.store import (
    ComponentStore, decode_signature, encode_signature, signature_mask,
)
from repro.sat.kernel import SatSnapshot
from repro.status import Status

WIDE = frozenset(range(1, 10_000))


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("signature", [
        (),
        (("c", (1, -2)),),
        (("c", (-5, 3, 7)), ("x", (2, 4), True)),
        (("x", (1, 2, 3), False),),
    ])
    def test_roundtrip(self, signature):
        assert decode_signature(encode_signature(signature)) == signature

    @pytest.mark.parametrize("text", [
        "not json",
        "{}",
        '[["q",[1]]]',          # unknown residual tag
        '[["c","nope"]]',       # literals not ints
        '[["x",[1,2]]]',        # xor row missing its parity
        '[null]',
    ])
    def test_corrupt_text_decodes_to_none(self, text):
        assert decode_signature(text) is None

    def test_mask_is_sorted_projection_support(self):
        signature = (("c", (3, -1)), ("x", (2, 9), True))
        assert signature_mask(signature, frozenset({1, 2, 5})) == (1, 2)
        assert signature_mask(signature, WIDE) == (1, 2, 3, 9)
        assert signature_mask(signature, frozenset()) == ()


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TestComponentStore:
    def test_flush_load_roundtrip(self, tmp_path):
        store = ComponentStore(tmp_path / "cc.sqlite")
        entries = {(("c", (1, 2)),): 3,
                   (("x", (4, 5), True),): 1 << 80}  # beyond sqlite ints
        assert store.flush(entries, WIDE) == 2
        assert store.load(WIDE) == entries
        assert len(store) == 2
        store.close()

    def test_load_filters_by_projection_mask(self, tmp_path):
        store = ComponentStore(tmp_path / "cc.sqlite")
        signature = (("c", (1, 2)),)
        store.flush({signature: 3}, WIDE)
        # under a projection where var 2 is no longer projected the
        # stored mask (1, 2) no longer matches -> miss, not a wrong hit
        assert store.load(frozenset({1})) == {}
        assert store.load(WIDE) == {signature: 3}
        store.close()

    def test_merge_on_write_keeps_first_saved_at(self, tmp_path):
        path = tmp_path / "cc.sqlite"
        store = ComponentStore(path)
        signature = (("c", (1, 2)),)
        store.flush({signature: 3}, WIDE)
        (first_saved,) = store._conn.execute(
            "SELECT saved_at FROM components").fetchone()
        store.flush({signature: 3}, WIDE)
        (second_saved, count) = store._conn.execute(
            "SELECT saved_at, count FROM components").fetchone()
        assert second_saved == first_saved
        assert count == "3"
        assert len(store) == 1
        store.close()

    def test_corrupt_rows_read_as_misses(self, tmp_path):
        path = tmp_path / "cc.sqlite"
        store = ComponentStore(path)
        good = (("c", (1, 2)),)
        store.flush({good: 7}, WIDE)
        with sqlite3.connect(path) as conn:
            conn.executemany(
                "INSERT INTO components VALUES (?, ?, ?, 0)",
                [("not json", "[1]", "5"),
                 (encode_signature((("c", (3, 4)),)), "[3,4]", "xyz"),
                 (encode_signature((("c", (5, 6)),)), "bad mask", "5")])
        assert store.load(WIDE) == {good: 7}
        assert store.corrupt == 3
        store.close()

    def test_concurrent_process_writers_lose_nothing(self, tmp_path):
        path = str(tmp_path / "cc.sqlite")
        with ProcessPoolExecutor(max_workers=4) as executor:
            written = list(executor.map(
                _flush_disjoint_range, [path] * 4, [100, 200, 300, 400]))
        assert written == [20] * 4
        store = ComponentStore(path)
        entries = store.load(WIDE)
        assert len(entries) == 80
        for base in (100, 200, 300, 400):
            for offset in range(20):
                var = base + 2 * offset
                assert entries[(("c", (var, var + 1)),)] == var
        store.close()


def _flush_disjoint_range(path: str, base: int) -> int:
    store = ComponentStore(path)
    entries = {(("c", (base + 2 * offset, base + 2 * offset + 1)),):
               base + 2 * offset
               for offset in range(20)}
    written = store.flush(entries, WIDE)
    store.close()
    return written


# ----------------------------------------------------------------------
# persistence discipline through the search
# ----------------------------------------------------------------------
def _snapshot(clauses, num_vars, xors=()):
    return SatSnapshot(num_vars, tuple(tuple(c) for c in clauses), (),
                       tuple(xors), ok=True)


class TestSearchIntegration:
    def test_clean_completion_flushes_and_second_run_hits(self, tmp_path):
        path = tmp_path / "cc.sqlite"
        snapshot = _snapshot([(1, 2), (3, 4)], 4)
        projection = frozenset({1, 2, 3, 4})
        cold_stats = CcStats()
        cold = count_snapshot(snapshot, projection, component_store=path,
                              stats=cold_stats)
        assert cold.status is Status.OK and cold.estimate == 9
        assert cold_stats.store_hits == 0
        store = ComponentStore(path)
        assert len(store) > 0
        store.close()
        warm_stats = CcStats()
        warm = count_snapshot(snapshot, projection, component_store=path,
                              stats=warm_stats)
        assert warm.estimate == 9
        assert warm_stats.store_hits > 0
        assert "store_hits=" in warm.detail

    def test_zeroed_scope_entries_never_persist(self, tmp_path):
        """Sang-Beame-Kautz at flush time: a zero product purges every
        entry its scope inserted, so the satisfiable sibling's count
        (a lower bound under learning, not a fact) never reaches disk."""
        path = tmp_path / "cc.sqlite"
        snapshot = _snapshot(
            [(1, 2), (1, -2), (-1, 2), (-1, -2), (3, 4)], 4)
        result = count_snapshot(snapshot, frozenset({1, 2, 3, 4}),
                                component_store=path, presolve=False)
        assert result.estimate == 0
        store = ComponentStore(path)
        assert len(store) == 0
        store.close()

    def test_timeout_flushes_nothing(self, tmp_path):
        path = tmp_path / "cc.sqlite"
        snapshot = _snapshot([(1, 2), (3, 4)], 4)
        result = count_snapshot(snapshot, frozenset({1, 2, 3, 4}),
                                component_store=path, timeout=0)
        assert result.status is Status.TIMEOUT
        assert not path.exists() or len(ComponentStore(path)) == 0


# ----------------------------------------------------------------------
# differential: a warmed store never changes a count
# ----------------------------------------------------------------------
@st.composite
def snapshots(draw):
    num_vars = draw(st.integers(min_value=4, max_value=9))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda var: st.sampled_from([var, -var]))
    clauses = draw(st.lists(
        st.lists(literal, min_size=1, max_size=3, unique_by=abs)
        .map(tuple), min_size=2, max_size=10))
    xors = draw(st.lists(
        st.tuples(
            st.lists(st.integers(min_value=1, max_value=num_vars),
                     min_size=2, max_size=4, unique=True)
            .map(lambda vs: tuple(sorted(vs))),
            st.booleans()),
        min_size=0, max_size=2))
    projection = draw(st.lists(
        st.integers(min_value=1, max_value=num_vars),
        min_size=1, max_size=num_vars, unique=True))
    return (_snapshot(clauses, num_vars, xors), frozenset(projection))


class TestStoreDifferential:
    @given(case=snapshots())
    @settings(max_examples=30, deadline=None)
    def test_store_warmed_counts_equal_cold_counts(self, case):
        snapshot, projection = case
        cold = count_snapshot(snapshot, projection)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "cc.sqlite"
            first = count_snapshot(snapshot, projection,
                                   component_store=path)
            second = count_snapshot(snapshot, projection,
                                    component_store=path)
        assert cold.estimate == first.estimate == second.estimate
