"""Component-parallel exact counting: bit-identity against the serial
search, cube-and-conquer splitting, stats/telemetry transport across
backends, and deadline/interrupt surfacing."""

import random
import time

import pytest

from repro.api import CountRequest, Problem, resolve
from repro.count_exact.counter import CcStats, count_snapshot
from repro.count_exact.parallel import (
    ComponentSpec, _cube_width, count_component_task,
)
from repro.engine.pool import ExecutionPool
from repro.sat.kernel import TELEMETRY, SatSnapshot
from repro.smt import bv_ult, bv_val, bv_var
from repro.status import Status
from repro.utils.deadline import Deadline


def random_snapshot(seed, num_vars=15, num_clauses=18, num_xors=2):
    """A satisfiable-leaning random CNF+XOR snapshot with several
    top-level components (width-2/3 clauses, low density)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(2, 3)
        chosen = rng.sample(range(1, num_vars + 1), width)
        clauses.append(tuple(var if rng.random() < 0.5 else -var
                             for var in chosen))
    xors = []
    for _ in range(num_xors):
        width = rng.randint(2, 4)
        xors.append((tuple(sorted(rng.sample(range(1, num_vars + 1),
                                             width))),
                     bool(rng.getrandbits(1))))
    return SatSnapshot(num_vars, tuple(clauses), (), tuple(xors), ok=True)


PROJECTION = frozenset(range(1, 12))


# ----------------------------------------------------------------------
# bit-identity
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("seed", range(4))
    def test_thread_backend_matches_serial(self, seed, jobs):
        snapshot = random_snapshot(seed)
        serial = count_snapshot(snapshot, PROJECTION)
        pool = ExecutionPool(jobs=jobs, backend="thread")
        parallel = count_snapshot(snapshot, PROJECTION, pool=pool,
                                  split_support=4)
        assert serial.status is parallel.status is Status.OK
        assert serial.estimate == parallel.estimate

    @pytest.mark.parametrize("seed", range(2))
    def test_process_backend_matches_serial(self, seed):
        snapshot = random_snapshot(seed)
        serial = count_snapshot(snapshot, PROJECTION)
        pool = ExecutionPool(jobs=2, backend="process")
        parallel = count_snapshot(snapshot, PROJECTION, pool=pool,
                                  split_support=4)
        assert serial.estimate == parallel.estimate

    def test_forced_cube_split_matches_serial(self):
        """split_support=0 cube-splits every component with projected
        support, so the cubes-sum-to-component invariant is on the
        critical path."""
        snapshot = random_snapshot(11)
        serial = count_snapshot(snapshot, PROJECTION)
        stats = CcStats()
        pool = ExecutionPool(jobs=4, backend="thread")
        parallel = count_snapshot(snapshot, PROJECTION, pool=pool,
                                  split_support=0, stats=stats)
        assert parallel.estimate == serial.estimate
        assert stats.dispatched >= 2  # at least one component, cubed

    def test_cube_specs_sum_to_whole_component(self):
        """Counting each cube of a spec independently sums to the
        unsplit spec's count — the identity the parent relies on."""
        clauses = ((1, 2, -3), (-1, 4), (2, 3, 4), (-2, -4))
        base = dict(num_vars=4, clauses=clauses, xors=(),
                    projection=(1, 2, 3, 4))
        whole = count_component_task(ComponentSpec(units=(), **base))
        split = [count_component_task(
                     ComponentSpec(units=(1 if bit else -1,), **base))
                 for bit in (0, 1)]
        assert whole["count"] == sum(part["count"] for part in split)


# ----------------------------------------------------------------------
# stats and telemetry transport
# ----------------------------------------------------------------------
class TestStatsTransport:
    def test_worker_stats_fold_into_parent(self):
        snapshot = random_snapshot(3)
        serial_stats = CcStats()
        count_snapshot(snapshot, PROJECTION, stats=serial_stats)
        pool_stats = CcStats()
        pool = ExecutionPool(jobs=2, backend="process")
        count_snapshot(snapshot, PROJECTION, pool=pool, split_support=4,
                       stats=pool_stats)
        assert pool_stats.dispatched > 0
        # the workers' search work is visible in the parent totals
        assert pool_stats.decisions > 0
        assert pool_stats.components > 0

    def test_stats_are_backend_independent(self):
        """Thread and process workers run the same searches, so the
        merged totals agree counter for counter."""
        snapshot = random_snapshot(5)
        totals = {}
        for backend in ("thread", "process"):
            stats = CcStats()
            pool = ExecutionPool(jobs=2, backend=backend)
            result = count_snapshot(snapshot, PROJECTION, pool=pool,
                                    split_support=4, stats=stats)
            totals[backend] = (result.estimate, stats.as_dict())
        assert totals["thread"] == totals["process"]

    def test_telemetry_survives_the_process_boundary(self):
        """The pool ships each worker's kernel-telemetry delta home, so
        ``pact count --stats`` totals are backend-independent."""
        snapshot = random_snapshot(7)
        deltas = {}
        for backend in ("thread", "process"):
            before = TELEMETRY.snapshot().get("cc.decisions", 0)
            pool = ExecutionPool(jobs=2, backend=backend)
            count_snapshot(snapshot, PROJECTION, pool=pool,
                           split_support=4)
            after = TELEMETRY.snapshot().get("cc.decisions", 0)
            deltas[backend] = after - before
        assert deltas["process"] > 0
        assert deltas["thread"] == deltas["process"]


# ----------------------------------------------------------------------
# deadline and interrupt surfacing
# ----------------------------------------------------------------------
class _ExpiringDeadline(Deadline):
    """Unlimited for the first ``allowance`` polls, expired after —
    a deterministic mid-recursion timeout."""

    def __init__(self, allowance: int):
        super().__init__(None)
        self.allowance = allowance

    def check(self):
        self.allowance -= 1
        if self.allowance < 0:
            from repro.errors import SolverTimeoutError
            raise SolverTimeoutError("deadline exceeded")


class TestDeadlines:
    def test_mid_recursion_deadline_surfaces_partial_stats(self, monkeypatch):
        """A deadline expiring deep in the search yields TIMEOUT with
        the partial stats in detail — never a silently short count."""
        from repro.count_exact import counter as counter_module
        monkeypatch.setattr(counter_module, "_DEADLINE_CHECK_INTERVAL", 4)
        snapshot = random_snapshot(1, num_vars=18, num_clauses=24)
        result = count_snapshot(snapshot, frozenset(range(1, 15)),
                                presolve=False,
                                deadline=_ExpiringDeadline(3))
        assert result.status is Status.TIMEOUT
        assert result.estimate is None
        assert result.detail.startswith("cc: decisions=")
        assert result.solver_calls > 0  # partial work is on record

    def test_worker_timeout_never_returns_partial_product(self, monkeypatch):
        """When any dispatched subproblem times out the parent raises
        (surfacing TIMEOUT), instead of multiplying the components that
        did finish."""
        import repro.count_exact.parallel as parallel_module
        monkeypatch.setattr(parallel_module, "_deadline_at",
                            lambda deadline: time.monotonic() - 1.0)
        snapshot = random_snapshot(2)
        pool = ExecutionPool(jobs=2, backend="thread")
        result = count_snapshot(snapshot, PROJECTION, pool=pool,
                                split_support=4)
        assert result.status is Status.TIMEOUT
        assert result.estimate is None

    @pytest.mark.parametrize("interrupt", [RecursionError, KeyboardInterrupt])
    def test_indirect_interrupts_surface_as_timeout(self, monkeypatch,
                                                    interrupt):
        """RecursionError/KeyboardInterrupt mid-search surface as
        TIMEOUT with the cause named in detail, not as a bare crash."""
        from repro.count_exact import counter as counter_module

        def explode(self, scope):
            raise interrupt()

        monkeypatch.setattr(counter_module._Search, "count_scope", explode)
        snapshot = random_snapshot(0)
        result = count_snapshot(snapshot, PROJECTION)
        assert result.status is Status.TIMEOUT
        assert result.estimate is None
        assert f"interrupted={interrupt.__name__}" in result.detail


# ----------------------------------------------------------------------
# cube geometry
# ----------------------------------------------------------------------
class TestCubeWidth:
    def test_tracks_job_count(self):
        assert _cube_width(1) == 1   # 2 cubes: minimum useful split
        assert _cube_width(2) == 1
        assert _cube_width(4) == 2
        assert _cube_width(8) == 3
        assert _cube_width(16) == 4

    def test_is_capped(self):
        assert _cube_width(1024) == 4


# ----------------------------------------------------------------------
# API threading
# ----------------------------------------------------------------------
class TestApiThreading:
    def test_component_store_keys_the_fingerprint_only_when_set(self):
        default = CountRequest(counter="exact:cc").cache_params()
        assert "component_store" not in default
        keyed = CountRequest(counter="exact:cc",
                             component_store="/tmp/cc.sqlite").cache_params()
        assert keyed["component_store"] == "/tmp/cc.sqlite"

    def test_registry_forwards_pool_and_store(self, tmp_path):
        x = bv_var("cc_par_reg", 10)
        problem = Problem.from_terms([bv_ult(x, bv_val(700, 10))], [x],
                                     name="cc_par_reg")
        store_path = tmp_path / "cc.sqlite"
        request = CountRequest(counter="exact:cc",
                               component_store=str(store_path))
        pool = ExecutionPool(jobs=2, backend="thread")
        response = resolve("exact:cc").count(problem, request, pool=pool)
        assert response.estimate == 700
        assert response.exact
        assert store_path.exists()
