"""Fingerprints and the JSON-on-disk result cache."""

from repro.engine.cache import (
    ResultCache, formula_fingerprint, script_fingerprint,
)
from repro.smt.terms import bv_ult, bv_val, bv_var


def _formula(width=8, bound=100, name="cf_x"):
    x = bv_var(name, width)
    return [bv_ult(x, bv_val(bound, width))], [x]


class TestFingerprint:
    def test_deterministic(self):
        assertions, projection = _formula()
        params = {"family": "xor", "epsilon": 0.8}
        assert (formula_fingerprint(assertions, projection, params)
                == formula_fingerprint(assertions, projection, params))

    def test_sensitive_to_formula(self):
        a1, p1 = _formula(bound=100)
        a2, p2 = _formula(bound=101)
        assert (formula_fingerprint(a1, p1)
                != formula_fingerprint(a2, p2))

    def test_sensitive_to_projection_sort(self):
        assertions, _ = _formula()
        assert (formula_fingerprint(assertions, [bv_var("cf_p", 8)])
                != formula_fingerprint(assertions, [bv_var("cf_p", 9)]))

    def test_sensitive_to_params(self):
        assertions, projection = _formula()
        assert (formula_fingerprint(assertions, projection,
                                    {"family": "xor"})
                != formula_fingerprint(assertions, projection,
                                       {"family": "prime"}))

    def test_script_fingerprint_params(self):
        assert (script_fingerprint("(assert true)", {"seed": 1})
                != script_fingerprint("(assert true)", {"seed": 2}))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("fp1") is None
        cache.put("fp1", {"estimate": 42, "status": "ok"})
        entry = cache.get("fp1")
        assert entry["estimate"] == 42
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1,
                               "evictions": 0, "artifact_hits": 0,
                               "artifact_misses": 0,
                               "artifact_evictions": 0}

    def test_round_trips_through_disk(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("fp1", {"estimate": 7, "status": "ok"})
        first.flush()
        second = ResultCache(tmp_path)
        assert second.get("fp1")["estimate"] == 7
        assert second.path.exists()

    def test_flush_without_changes_writes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.flush()
        assert not cache.path.exists()

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "pact-cache.json"
        path.write_text("{not json!!")
        cache = ResultCache(tmp_path)
        assert cache.get("fp1") is None
        cache.put("fp1", {"estimate": 1, "status": "ok"})
        cache.flush()
        assert ResultCache(tmp_path).get("fp1")["estimate"] == 1

    def test_context_manager_flushes(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put("fp2", {"estimate": 9, "status": "ok"})
        assert ResultCache(tmp_path).get("fp2")["estimate"] == 9


class TestLruBound:
    def test_bound_enforced_at_flush(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        for index in range(6):
            cache.put(f"fp{index}", {"estimate": index, "status": "ok"})
        cache.flush()
        assert len(cache) == 3
        assert cache.evictions == 3
        assert cache.stats["evictions"] == 3
        # the most recent entries survive
        assert cache.get("fp5") is not None
        assert cache.get("fp0") is None

    def test_eviction_is_least_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        cache.put("old", {"estimate": 1, "status": "ok"})
        cache.put("mid", {"estimate": 2, "status": "ok"})
        cache.put("new", {"estimate": 3, "status": "ok"})
        assert cache.get("old") is not None  # refresh: old is now recent
        cache.flush()
        assert cache.get("mid") is None  # mid was the LRU entry
        assert cache.get("old") is not None
        assert cache.get("new") is not None

    def test_recency_survives_reload(self, tmp_path):
        first = ResultCache(tmp_path, max_entries=10)
        first.put("a", {"estimate": 1, "status": "ok"})
        first.put("b", {"estimate": 2, "status": "ok"})
        first.get("a")
        first.flush()
        second = ResultCache(tmp_path, max_entries=1)
        second.put("c", {"estimate": 3, "status": "ok"})
        second.flush()
        assert len(second) == 1
        assert second.get("c") is not None

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(50):
            cache.put(f"fp{index}", {"estimate": index, "status": "ok"})
        cache.flush()
        assert len(cache) == 50
        assert cache.evictions == 0


class TestCorruptTolerance:
    def test_corrupt_file_reads_as_empty(self, tmp_path):
        (tmp_path / "pact-cache.json").write_text("{not json")
        cache = ResultCache(tmp_path)
        assert cache.get("fp") is None
        cache.put("fp", {"estimate": 1, "status": "ok"})
        cache.flush()
        assert ResultCache(tmp_path).get("fp") is not None

    def test_corrupt_entry_dropped_not_fatal(self, tmp_path):
        import json
        (tmp_path / "pact-cache.json").write_text(json.dumps({
            "version": 1,
            "entries": {"good": {"estimate": 5, "status": "ok"},
                        "bad": "not-a-mapping",
                        "worse": 17},
        }))
        cache = ResultCache(tmp_path)
        assert cache.get("good")["estimate"] == 5
        assert cache.get("bad") is None
        assert cache.get("worse") is None


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_artifact("d1") is None
        cache.put_artifact("d1", {"version": 1, "digest": "d1"})
        assert cache.get_artifact("d1")["digest"] == "d1"
        assert cache.stats["artifact_hits"] == 1
        assert cache.stats["artifact_misses"] == 1

    def test_modes_stored_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_artifact("d1", {"mode": "on"}, simplified=True)
        cache.put_artifact("d1", {"mode": "off"}, simplified=False)
        assert cache.get_artifact("d1", simplified=True)["mode"] == "on"
        assert cache.get_artifact("d1", simplified=False)["mode"] == "off"
        assert cache.has_artifact("d1") and cache.has_artifact(
            "d1", simplified=False)

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.artifact_dir.mkdir(parents=True)
        (cache.artifact_dir / "bad-s1.json").write_text("{broken")
        assert cache.get_artifact("bad") is None

    def test_lru_trim(self, tmp_path):
        import os
        cache = ResultCache(tmp_path, max_artifacts=2)
        for index, digest in enumerate(("a", "b", "c")):
            cache.put_artifact(digest, {"index": index})
            path = cache._artifact_path(digest, True)
            os.utime(path, (index, index))  # deterministic mtimes
        cache.put_artifact("d", {"index": 3})
        names = sorted(p.name for p in cache.artifact_dir.glob("*.json"))
        assert len(names) == 2
        assert cache.artifact_evictions >= 2
        assert cache.evictions == 0  # result-row evictions stay separate


class TestAtomicWrites:
    """Satellite hardening: temp + fsync + os.replace means a crash (or
    a concurrent reader) can never observe a torn document."""

    def test_crashed_flush_leaves_previous_document_intact(
            self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put("fp-first", {"estimate": 1, "status": "ok"})
        cache.flush()
        before = (tmp_path / "pact-cache.json").read_text()

        import os as os_module
        def crash(src, dst):
            raise OSError("simulated crash mid-rename")
        monkeypatch.setattr(os_module, "replace", crash)
        cache.put("fp-second", {"estimate": 2, "status": "ok"})
        try:
            cache.flush()
        except OSError:
            pass
        monkeypatch.undo()

        # The on-disk document is byte-identical to the last good flush
        # and still parses; no temp litter with the target's name.
        assert (tmp_path / "pact-cache.json").read_text() == before
        survivor = ResultCache(tmp_path)
        assert survivor.get("fp-first") is not None
        assert survivor.get("fp-second") is None
        # A later flush (the "process restarted" path) persists it all.
        cache.flush()
        recovered = ResultCache(tmp_path)
        assert recovered.get("fp-second") is not None

    def test_crashed_artifact_write_leaves_no_torn_file(
            self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put_artifact("d1", {"cnf": [1]})
        good = cache._artifact_path("d1", True).read_text()

        import os as os_module
        def crash(src, dst):
            raise OSError("simulated crash mid-rename")
        monkeypatch.setattr(os_module, "replace", crash)
        try:
            cache.put_artifact("d1", {"cnf": [1, 2, 3]})
        except OSError:
            pass
        monkeypatch.undo()
        assert cache._artifact_path("d1", True).read_text() == good
        assert cache.get_artifact("d1") == {"cnf": [1]}

    def test_no_temp_files_survive_a_clean_flush(self, tmp_path):
        cache = ResultCache(tmp_path)
        for n in range(5):
            cache.put(f"fp{n}", {"estimate": n, "status": "ok"})
            cache.flush()
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_stale_temp_from_a_dead_writer_is_swept(self, tmp_path):
        import os as os_module
        stale = tmp_path / ".cache-dead123.tmp"
        fresh = tmp_path / ".cache-live456.tmp"
        stale.write_text("{")
        fresh.write_text("{")
        old = 1_000_000.0  # well past STALE_TEMP_SECONDS
        os_module.utime(stale, (old, old))
        cache = ResultCache(tmp_path)
        cache.put("fp", {"estimate": 1, "status": "ok"})
        cache.flush()
        assert not stale.exists()      # dead writer's litter removed
        assert fresh.exists()          # a live writer may still own it


class TestMergeOnWrite:
    def test_two_caches_flushing_one_directory_lose_nothing(
            self, tmp_path):
        first = ResultCache(tmp_path)
        second = ResultCache(tmp_path)
        first.put("fp-a", {"estimate": 1, "status": "ok"})
        second.put("fp-b", {"estimate": 2, "status": "ok"})
        first.flush()
        second.flush()   # must fold in fp-a, not clobber it
        merged = ResultCache(tmp_path)
        assert merged.get("fp-a")["estimate"] == 1
        assert merged.get("fp-b")["estimate"] == 2

    def test_conflicting_fingerprint_local_row_wins(self, tmp_path):
        first = ResultCache(tmp_path)
        second = ResultCache(tmp_path)
        first.put("fp", {"estimate": 1, "status": "ok"})
        second.put("fp", {"estimate": 2, "status": "ok"})
        first.flush()
        second.flush()
        assert ResultCache(tmp_path).get("fp")["estimate"] == 2

    def test_threaded_put_flush_on_one_instance(self, tmp_path):
        """The serving layer's workers share one store instance; puts
        and flushes from many threads must not lose rows or crash."""
        import threading
        cache = ResultCache(tmp_path)
        errors = []

        def hammer(base):
            try:
                for n in range(20):
                    cache.put(f"fp-{base}-{n}",
                              {"estimate": n, "status": "ok"})
                    if n % 5 == 0:
                        cache.flush()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cache.flush()
        assert not errors
        reread = ResultCache(tmp_path)
        assert len(reread) == 160
