"""Fingerprints and the JSON-on-disk result cache."""

from repro.engine.cache import (
    ResultCache, formula_fingerprint, script_fingerprint,
)
from repro.smt.terms import bv_ult, bv_val, bv_var


def _formula(width=8, bound=100, name="cf_x"):
    x = bv_var(name, width)
    return [bv_ult(x, bv_val(bound, width))], [x]


class TestFingerprint:
    def test_deterministic(self):
        assertions, projection = _formula()
        params = {"family": "xor", "epsilon": 0.8}
        assert (formula_fingerprint(assertions, projection, params)
                == formula_fingerprint(assertions, projection, params))

    def test_sensitive_to_formula(self):
        a1, p1 = _formula(bound=100)
        a2, p2 = _formula(bound=101)
        assert (formula_fingerprint(a1, p1)
                != formula_fingerprint(a2, p2))

    def test_sensitive_to_projection_sort(self):
        assertions, _ = _formula()
        assert (formula_fingerprint(assertions, [bv_var("cf_p", 8)])
                != formula_fingerprint(assertions, [bv_var("cf_p", 9)]))

    def test_sensitive_to_params(self):
        assertions, projection = _formula()
        assert (formula_fingerprint(assertions, projection,
                                    {"family": "xor"})
                != formula_fingerprint(assertions, projection,
                                       {"family": "prime"}))

    def test_script_fingerprint_params(self):
        assert (script_fingerprint("(assert true)", {"seed": 1})
                != script_fingerprint("(assert true)", {"seed": 2}))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("fp1") is None
        cache.put("fp1", {"estimate": 42, "status": "ok"})
        entry = cache.get("fp1")
        assert entry["estimate"] == 42
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_round_trips_through_disk(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("fp1", {"estimate": 7, "status": "ok"})
        first.flush()
        second = ResultCache(tmp_path)
        assert second.get("fp1")["estimate"] == 7
        assert second.path.exists()

    def test_flush_without_changes_writes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.flush()
        assert not cache.path.exists()

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "pact-cache.json"
        path.write_text("{not json!!")
        cache = ResultCache(tmp_path)
        assert cache.get("fp1") is None
        cache.put("fp1", {"estimate": 1, "status": "ok"})
        cache.flush()
        assert ResultCache(tmp_path).get("fp1")["estimate"] == 1

    def test_context_manager_flushes(self, tmp_path):
        with ResultCache(tmp_path) as cache:
            cache.put("fp2", {"estimate": 9, "status": "ok"})
        assert ResultCache(tmp_path).get("fp2")["estimate"] == 9
