"""The engine's determinism contract: parallel runs are bit-identical to
serial runs for the same seed (satellite of the paper's (eps, delta)
guarantee — the median is only meaningful if the iterations it is taken
over do not depend on scheduling).

Thread workers share the orchestrator's interned terms; process workers
re-parse the serialised script in a fresh interpreter state — both must
reproduce the serial per-iteration estimates exactly, for all three pact
hash families and for CDM.
"""

import pytest

from repro import cdm_count, count_projected
from repro.engine import ExecutionPool, make_spec, run_iteration
from repro.smt import bv_ult, bv_val, bv_var

ITERATIONS = 4
SEED = 11


def _formula(name):
    x = bv_var(name, 8)
    return [bv_ult(x, bv_val(200, 8))], [x]


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("family", ["xor", "prime", "shift"])
def test_pact_parallel_matches_serial(family, backend):
    assertions, projection = _formula(f"det_{family}_{backend}")
    serial = count_projected(assertions, projection, family=family,
                             seed=SEED, iteration_override=ITERATIONS)
    parallel = count_projected(assertions, projection, family=family,
                               seed=SEED, iteration_override=ITERATIONS,
                               pool=ExecutionPool(2, backend))
    assert serial.estimates == parallel.estimates
    assert serial.estimate == parallel.estimate
    assert parallel.iterations == ITERATIONS


# cdm's q-fold composition makes this the suite's slowest property
# test; it runs in the slow CI job, not tier-1.
@pytest.mark.slow
def test_cdm_parallel_matches_serial():
    # CDM self-composes the formula q times, so keep the space small.
    x = bv_var("det_cdm", 7)
    assertions, projection = [bv_ult(x, bv_val(90, 7))], [x]
    serial = cdm_count(assertions, projection, seed=SEED,
                       iteration_override=2)
    parallel = cdm_count(assertions, projection, seed=SEED,
                         iteration_override=2,
                         pool=ExecutionPool(2, "thread"))
    assert serial.estimates == parallel.estimates
    assert serial.estimate == parallel.estimate


@pytest.mark.parametrize("family", ["xor", "prime", "shift"])
def test_run_iteration_is_pure(family):
    """The unit of work returns the same estimate on repeated calls and
    matches the corresponding serial iteration."""
    assertions, projection = _formula(f"det_pure_{family}")
    spec = make_spec("pact", assertions, projection, epsilon=0.8,
                     delta=0.2, family=family, seed=SEED)
    serial = count_projected(assertions, projection, family=family,
                             seed=SEED, iteration_override=ITERATIONS)
    for index in (0, ITERATIONS - 1):
        first = run_iteration(spec, index)
        assert first == run_iteration(spec, index)
        assert first == serial.estimates[index]


def test_exact_short_circuit_ignores_pool():
    """Small spaces are counted exactly before any fan-out happens."""
    x = bv_var("det_small", 6)
    result = count_projected([bv_ult(x, bv_val(9, 6))], [x],
                             pool=ExecutionPool(2, "thread"))
    assert result.exact
    assert result.estimate == 9
