"""ExecutionPool: backends, ordering, budgets, failure classification."""

import time

import pytest

from repro.engine.pool import BACKENDS, ExecutionPool, Task
from repro.errors import SolverTimeoutError


# Module-level task bodies so the process backend can pickle them.
def square(value, budget=None):
    return value * value


def echo_budget(budget=None):
    return budget


def boom(budget=None):
    raise ValueError("boom")


def too_slow(budget=None):
    raise SolverTimeoutError("deadline exceeded")


def slow_square(value, budget=None):
    time.sleep(0.05)
    return value * value


class TestConstruction:
    def test_defaults(self):
        assert ExecutionPool().backend == "serial"
        assert ExecutionPool(4).backend == "process"
        assert ExecutionPool(4, "thread").backend == "thread"

    def test_jobs_zero_means_cpu_count(self):
        assert ExecutionPool(0).jobs >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPool(2, "quantum")

    def test_parallel_property(self):
        assert not ExecutionPool(1).parallel
        assert not ExecutionPool(4, "serial").parallel
        assert ExecutionPool(2, "thread").parallel


class TestRun:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_task_order(self, backend):
        pool = ExecutionPool(2, backend)
        results = pool.map(square, [(v,) for v in range(6)])
        assert [r.key for r in results] == list(range(6))
        assert [r.value for r in results] == [v * v for v in range(6)]
        assert all(r.ok for r in results)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_forwarded(self, backend):
        pool = ExecutionPool(2, backend)
        results = pool.run([Task(key=0, fn=echo_budget, budget=7.5)])
        assert results[0].value == 7.5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_error_captured_not_raised(self, backend):
        pool = ExecutionPool(2, backend)
        ok, bad = pool.run([Task(key="a", fn=square, args=(3,)),
                            Task(key="b", fn=boom)])
        assert ok.ok and ok.value == 9
        assert bad.status == "error"
        assert isinstance(bad.error, ValueError)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timeout_classified(self, backend):
        pool = ExecutionPool(2, backend)
        (result,) = pool.run([Task(key=0, fn=too_slow)])
        assert result.status == "timeout"
        assert isinstance(result.error, SolverTimeoutError)

    def test_empty_task_list(self):
        assert ExecutionPool(2, "thread").run([]) == []

    def test_progress_fires_per_task(self):
        seen = []
        pool = ExecutionPool(2, "thread")
        pool.map(square, [(v,) for v in range(4)],
                 progress=lambda r: seen.append(r.key))
        assert sorted(seen) == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_deadline_drains_queued_tasks(self, backend):
        """A shared absolute deadline is a total budget: tasks starting
        after it are drained as timeouts, not granted fresh budgets."""
        expired = time.monotonic() - 1.0
        pool = ExecutionPool(2, backend)
        results = pool.run([Task(key=i, fn=slow_square, args=(i,),
                                 deadline_at=expired)
                            for i in range(4)])
        assert [r.status for r in results] == ["timeout"] * 4

    def test_batch_deadline_caps_task_budget(self):
        pool = ExecutionPool(1)
        (result,) = pool.run([Task(key=0, fn=echo_budget, budget=100.0,
                                   deadline_at=time.monotonic() + 5.0)])
        assert result.ok
        assert result.value < 6.0

    def test_worker_times_accumulate(self):
        pool = ExecutionPool(2, "thread")
        pool.map(slow_square, [(v,) for v in range(4)])
        assert pool.worker_times
        tasks_counted = sum(count for count, _ in pool.worker_times.values())
        assert tasks_counted == 4
        assert all(busy > 0 for _, busy in pool.worker_times.values())
