"""Matrix scheduling: ordering, pool dispatch, fingerprint cache reuse."""

import pytest

from repro.benchgen.generators import qf_bvfp, qf_ufbv
from repro.engine import ExecutionPool, ResultCache, schedule_matrix
from repro.harness.presets import Preset
from repro.harness.report import matrix_summary
from repro.harness.runner import run_matrix

PRESET = Preset.smoke()
CONFIGS = ("pact_xor", "pact_shift")


@pytest.fixture(scope="module")
def instances():
    return [qf_bvfp(seed=3, width=9), qf_ufbv(seed=4, width=9)]


@pytest.fixture(scope="module")
def serial_run(instances):
    return schedule_matrix(instances, PRESET, configurations=CONFIGS)


def _comparable(records):
    return [(r.configuration, r.instance, r.solved, r.estimate, r.status)
            for r in records]


class TestScheduling:
    def test_instance_major_order(self, instances, serial_run):
        expected = [(instance.name, configuration)
                    for instance in instances for configuration in CONFIGS]
        assert [(r.instance, r.configuration)
                for r in serial_run.records] == expected

    def test_matches_run_matrix(self, instances, serial_run):
        records = run_matrix(instances, PRESET, configurations=CONFIGS)
        assert _comparable(records) == _comparable(serial_run.records)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial(self, instances, serial_run, backend):
        run = schedule_matrix(instances, PRESET, configurations=CONFIGS,
                              pool=ExecutionPool(2, backend))
        assert _comparable(run.records) == _comparable(serial_run.records)
        assert sum(count for count, _ in run.worker_times.values()) == 4

    def test_progress_callback_sees_every_slot(self, instances):
        seen = []
        schedule_matrix(instances, PRESET, configurations=CONFIGS,
                        progress=lambda r: seen.append(r.instance))
        assert len(seen) == len(instances) * len(CONFIGS)


class TestCache:
    def test_second_run_served_from_cache(self, instances, serial_run,
                                          tmp_path):
        cache = ResultCache(tmp_path)
        first = schedule_matrix(instances, PRESET, configurations=CONFIGS,
                                cache=cache)
        assert first.cache_hits == 0
        assert first.cache_misses == 4

        warm = ResultCache(tmp_path)
        second = schedule_matrix(instances, PRESET,
                                 configurations=CONFIGS, cache=warm)
        assert second.cache_hits == 4
        assert second.cache_misses == 0
        assert all(r.cached for r in second.records)
        assert _comparable(second.records) == _comparable(first.records)

    def test_different_preset_does_not_hit(self, instances, tmp_path):
        cache = ResultCache(tmp_path)
        schedule_matrix(instances, PRESET, configurations=CONFIGS,
                        cache=cache)
        other = Preset(name="other", instances_per_logic=3, timeout=2.5,
                       iteration_override=2)
        cold = ResultCache(tmp_path)
        run = schedule_matrix(instances, other, configurations=CONFIGS,
                              cache=cold)
        assert run.cache_hits == 0

    def test_summary_reports_cache_and_workers(self, instances, tmp_path):
        cache = ResultCache(tmp_path)
        schedule_matrix(instances, PRESET, configurations=CONFIGS,
                        cache=cache)
        run = schedule_matrix(instances, PRESET, configurations=CONFIGS,
                              cache=ResultCache(tmp_path))
        text = matrix_summary(run, PRESET)
        assert "cache: 4 hits" in text
        assert "Run summary" in text
