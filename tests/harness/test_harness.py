"""Harness tests: presets, runner, the three experiment modules."""

import pytest

from repro.benchgen.generators import qf_bvfp
from repro.harness.accuracy import accuracy_csv, accuracy_table, error_series
from repro.harness.cactus import cactus_csv, cactus_series, cactus_table
from repro.harness.presets import Preset
from repro.harness.report import ascii_plot, format_table, to_csv
from repro.harness.runner import RunRecord, run_configuration, run_matrix
from repro.harness.table1 import PAPER_TABLE1, solved_by_logic, table1_rows


class TestPresets:
    def test_paper_preset_is_faithful(self):
        preset = Preset.paper()
        assert preset.timeout == 3600.0
        assert preset.epsilon == 0.8
        assert preset.delta == 0.2
        assert preset.iteration_override is None
        assert preset.min_count == 500

    def test_scaled_presets_shrink(self):
        paper, laptop, smoke = (Preset.paper(), Preset.laptop(),
                                Preset.smoke())
        assert smoke.timeout < laptop.timeout < paper.timeout
        assert (smoke.instances_per_logic < laptop.instances_per_logic
                < paper.instances_per_logic)

    def test_by_name(self):
        assert Preset.by_name("smoke").name == "smoke"
        with pytest.raises(ValueError):
            Preset.by_name("cluster")


class TestRunner:
    def test_run_configuration_pact(self):
        instance = qf_bvfp(seed=1, width=9)
        record = run_configuration("pact_xor", instance, Preset.smoke())
        assert record.solved
        assert record.logic == "QF_BVFP"
        assert record.relative_error is not None
        assert record.relative_error <= 0.8

    def test_run_configuration_timeout_recorded(self):
        instance = qf_bvfp(seed=1, width=13)
        tight = Preset(name="tight", instances_per_logic=1,
                       timeout=0.01, iteration_override=1)
        record = run_configuration("cdm", instance, tight)
        assert not record.solved
        assert record.status in ("timeout", "error")

    def test_unknown_family_reported_as_error(self):
        instance = qf_bvfp(seed=1, width=9)
        record = run_configuration("pact_md5", instance, Preset.smoke())
        assert not record.solved
        assert record.status == "error"

    def test_unknown_configuration_reported_as_error(self):
        """Dispatch goes through the repro.api registry: any unresolvable
        configuration becomes an error record, not a crash."""
        instance = qf_bvfp(seed=1, width=9)
        record = run_configuration("minisat", instance, Preset.smoke())
        assert not record.solved
        assert record.status == "error"

    def test_run_matrix_shape(self):
        instance = qf_bvfp(seed=2, width=9)
        records = run_matrix([instance], Preset.smoke(),
                             configurations=("pact_xor", "pact_shift"))
        assert len(records) == 2
        assert {r.configuration for r in records} == {"pact_xor",
                                                      "pact_shift"}

    def test_relative_error_with_zero_known_count(self):
        """A known count of 0 is legitimate ground truth, not missing."""
        exact_zero = _record("pact_xor", "QF_ABV", True, estimate=0,
                             known=0)
        assert exact_zero.relative_error == 0.0
        overestimate = _record("pact_xor", "QF_ABV", True, estimate=5,
                               known=0)
        assert overestimate.relative_error == float("inf")

    def test_relative_error_none_when_unknown_or_unsolved(self):
        assert _record("pact_xor", "QF_ABV", True,
                       known=None).relative_error is None
        assert _record("pact_xor", "QF_ABV", False).relative_error is None


def _record(configuration, logic, solved, time_seconds=1.0,
            estimate=100, known=100):
    return RunRecord(configuration=configuration, instance=f"i_{logic}",
                     logic=logic, solved=solved, estimate=estimate,
                     known_count=known, time_seconds=time_seconds,
                     solver_calls=10, status="ok" if solved else "timeout")


class TestTable1Formatting:
    def test_solved_by_logic(self):
        records = [
            _record("pact_xor", "QF_ABV", True),
            _record("pact_xor", "QF_ABV", True),
            _record("cdm", "QF_ABV", False),
        ]
        counts = solved_by_logic(records)
        assert counts["QF_ABV"]["pact_xor"] == 2
        assert counts["QF_ABV"]["cdm"] == 0

    def test_rows_include_totals(self):
        records = [_record("pact_xor", "QF_ABV", True),
                   _record("pact_prime", "QF_BVFP", True)]
        rows = table1_rows(records)
        assert rows[-1][0] == "Total"
        assert rows[-1][4] == 1  # pact_xor total

    def test_paper_reference_shape(self):
        """The hard-coded paper numbers satisfy the claims we test."""
        for logic, row in PAPER_TABLE1.items():
            assert row["pact_xor"] >= max(row["pact_prime"],
                                          row["pact_shift"]), logic
        totals = {c: sum(row[c] for row in PAPER_TABLE1.values())
                  for c in ("cdm", "pact_prime", "pact_shift",
                            "pact_xor")}
        assert totals == {"cdm": 83, "pact_prime": 33,
                          "pact_shift": 40, "pact_xor": 456}


class TestCactus:
    def test_series_sorted_cumulative(self):
        records = [_record("pact_xor", "QF_ABV", True, 3.0),
                   _record("pact_xor", "QF_ABV", True, 1.0),
                   _record("pact_xor", "QF_ABV", False, 9.0)]
        series = cactus_series(records)
        assert series["pact_xor"] == [(1, 1.0), (2, 3.0)]

    def test_csv_and_table(self):
        records = [_record("pact_xor", "QF_ABV", True, 2.0)]
        assert "pact_xor" in cactus_table(records)
        csv_text = cactus_csv(records)
        assert "configuration,instances_solved,time_seconds" in csv_text


class TestAccuracy:
    def test_error_series_indexes_instances(self):
        records = [
            _record("pact_xor", "QF_ABV", True, estimate=110, known=100),
            _record("pact_prime", "QF_ABV", True, estimate=120,
                    known=100),
        ]
        series = error_series(records)
        assert series["pact_xor"][0][1] == pytest.approx(0.1)
        assert series["pact_prime"][0][1] == pytest.approx(0.2)

    def test_table_flags_bound_violation(self):
        records = [_record("pact_xor", "QF_ABV", True, estimate=300,
                           known=100)]
        table = accuracy_table(records, epsilon=0.8)
        assert "NO" in table

    def test_csv(self):
        records = [_record("pact_xor", "QF_ABV", True)]
        assert "relative_error" in accuracy_csv(records)


class TestExactGroundTruth:
    def test_sets_and_cross_checks_counts(self):
        from repro.harness.accuracy import exact_ground_truth
        instance = qf_bvfp(3, width=7)
        analytic = instance.known_count
        exact_ground_truth([instance])
        assert instance.known_count == analytic  # verified, unchanged

    def test_disagreement_raises(self):
        from repro.errors import CounterError
        from repro.harness.accuracy import exact_ground_truth
        instance = qf_bvfp(3, width=7)
        instance.known_count = (instance.known_count or 0) + 1
        with pytest.raises(CounterError, match="disagreement"):
            exact_ground_truth([instance])

    def test_counter_refusal_keeps_analytic_count(self):
        """An instance the exact engine cannot take (here: more LRA
        atoms than the closure cap) keeps its analytic ground truth
        instead of killing the experiment."""
        from repro.benchgen.spec import Instance
        from repro.count_exact import MAX_CLOSURE_ATOMS
        from repro.harness.accuracy import exact_ground_truth
        from repro.smt import bv_ult, bv_val, bv_var, real_lt, real_val, \
            real_var
        x = bv_var("gt_cap", 4)
        r = real_var("gt_cap_r")
        assertions = [bv_ult(x, bv_val(9, 4))]
        assertions += [real_lt(real_val(i), r)
                       for i in range(MAX_CLOSURE_ATOMS + 1)]
        instance = Instance(name="gt_cap", logic="QF_BVFPLRA",
                            cluster="cap", assertions=assertions,
                            projection=[x], known_count=9)
        exact_ground_truth([instance])
        assert instance.known_count == 9


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]

    def test_to_csv(self):
        assert to_csv(["x"], [[1], [2]]).splitlines() == ["x", "1", "2"]

    def test_ascii_plot_renders(self):
        plot = ascii_plot({"s": [(0.0, 0.0), (1.0, 1.0)]})
        assert "x" in plot
        assert "s" in plot

    def test_ascii_plot_empty(self):
        assert ascii_plot({}) == "(no data)"
