"""ConstraintGraph: propagation, residuals, component splitting."""

from repro.sat.components import ConstraintGraph, TRUE_V, UNSET_V


def fresh(graph):
    return [UNSET_V] * (graph.num_vars + 1), []


class TestPropagation:
    def test_unit_chain(self):
        # 1 -> 2 -> 3 via binary clauses
        graph = ConstraintGraph(3, [[-1, 2], [-2, 3]])
        values, trail = fresh(graph)
        assert graph.assign(values, trail, 1)
        assert graph.propagate(values, trail, 0)
        assert values[1] == values[2] == values[3] == TRUE_V
        assert trail == [1, 2, 3]

    def test_clause_conflict(self):
        graph = ConstraintGraph(2, [[1, 2], [-1, 2], [1, -2], [-1, -2]])
        values, trail = fresh(graph)
        assert graph.assign(values, trail, 1)
        assert not graph.propagate(values, trail, 0)

    def test_xor_propagates_last_variable(self):
        graph = ConstraintGraph(3, [], xors=[((1, 2, 3), True)])
        values, trail = fresh(graph)
        graph.assign(values, trail, 1)
        graph.assign(values, trail, 2)
        assert graph.propagate(values, trail, 0)
        assert values[3] == TRUE_V  # 1 xor 1 xor v3 = 1  ->  v3 = 1

    def test_xor_conflict(self):
        graph = ConstraintGraph(2, [], xors=[((1, 2), False)])
        values, trail = fresh(graph)
        graph.assign(values, trail, 1)
        graph.assign(values, trail, -2)
        assert not graph.propagate(values, trail, 0)

    def test_assign_contradiction(self):
        graph = ConstraintGraph(1, [])
        values, trail = fresh(graph)
        assert graph.assign(values, trail, 1)
        assert not graph.assign(values, trail, -1)
        assert graph.assign(values, trail, 1)  # re-assert is fine


class TestResiduals:
    def test_satisfied_clause_is_inactive(self):
        graph = ConstraintGraph(2, [[1, 2]])
        values, trail = fresh(graph)
        graph.assign(values, trail, 1)
        assert graph.residual(values, 0) is None

    def test_clause_residual_drops_false_literals(self):
        graph = ConstraintGraph(3, [[1, 2, 3]])
        values, trail = fresh(graph)
        graph.assign(values, trail, -2)
        assert graph.residual(values, 0) == ("c", (1, 3))

    def test_xor_residual_folds_parity(self):
        graph = ConstraintGraph(3, [], xors=[((1, 2, 3), True)])
        values, trail = fresh(graph)
        graph.assign(values, trail, 1)
        assert graph.residual(values, 0) == ("x", (2, 3), False)
        values2, trail2 = fresh(graph)
        graph.assign(values2, trail2, -1)
        assert graph.residual(values2, 0) == ("x", (2, 3), True)


class TestSplit:
    def test_disjoint_clauses_are_separate_components(self):
        graph = ConstraintGraph(4, [[1, 2], [3, 4]])
        values, trail = fresh(graph)
        components, free = graph.split(values, range(1, 5))
        assert [c.variables for c in components] == [(1, 2), (3, 4)]
        assert [c.constraints for c in components] == [(0,), (1,)]
        assert free == []

    def test_shared_variable_joins_components(self):
        graph = ConstraintGraph(3, [[1, 2], [2, 3]])
        values, trail = fresh(graph)
        components, _ = graph.split(values, range(1, 4))
        assert len(components) == 1
        assert components[0].variables == (1, 2, 3)

    def test_assignment_splits_a_component(self):
        # assigning the bridge variable 2 satisfies clause 0 and
        # reduces clause 1; components then split on what remains.
        graph = ConstraintGraph(4, [[1, 2], [-2, 3, 4]])
        values, trail = fresh(graph)
        graph.assign(values, trail, 2)
        assert graph.propagate(values, trail, 0)
        components, free = graph.split(values, range(1, 5))
        assert [c.variables for c in components] == [(3, 4)]
        assert free == [1]

    def test_unconstrained_scope_variables_are_free(self):
        graph = ConstraintGraph(5, [[1, 2]])
        values, trail = fresh(graph)
        components, free = graph.split(values, range(1, 6))
        assert [c.variables for c in components] == [(1, 2)]
        assert free == [3, 4, 5]

    def test_xor_rows_link_components(self):
        graph = ConstraintGraph(4, [[1, 2]], xors=[((2, 3, 4), True)])
        values, trail = fresh(graph)
        components, _ = graph.split(values, range(1, 5))
        assert len(components) == 1
        assert components[0].variables == (1, 2, 3, 4)
        assert components[0].constraints == (0, 1)
