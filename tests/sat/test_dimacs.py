"""DIMACS parsing/writing tests."""

import pytest

from repro.errors import ParseError
from repro.sat.dimacs import load_solver, parse_dimacs, write_dimacs


class TestParse:
    def test_simple_cnf(self):
        text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        num_vars, clauses, xors = parse_dimacs(text)
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3]]
        assert xors == []

    def test_xor_rows(self):
        text = "p cnf 3 1\nx1 -2 3 0\n"
        _, clauses, xors = parse_dimacs(text)
        assert clauses == []
        assert xors == [([1, 2, 3], False)]  # one negation flips parity

    def test_missing_terminator(self):
        with pytest.raises(ParseError):
            parse_dimacs("p cnf 1 1\n1\n")

    def test_clause_before_header(self):
        with pytest.raises(ParseError):
            parse_dimacs("1 0\n")

    def test_out_of_range_literal(self):
        with pytest.raises(ParseError):
            parse_dimacs("p cnf 1 1\n2 0\n")

    def test_bad_header(self):
        with pytest.raises(ParseError):
            parse_dimacs("p dnf 1 1\n1 0\n")


class TestRoundTrip:
    def test_write_then_parse(self):
        text = write_dimacs(4, [[1, -2], [3, 4]], [([1, 4], True)])
        num_vars, clauses, xors = parse_dimacs(text)
        assert num_vars == 4
        assert clauses == [[1, -2], [3, 4]]
        assert xors == [([1, 4], True)]

    def test_negative_rhs_round_trip(self):
        text = write_dimacs(2, [], [([1, 2], False)])
        _, _, xors = parse_dimacs(text)
        assert xors == [([1, 2], False)]

    def test_load_solver_solves(self):
        solver = load_solver("p cnf 2 2\n1 0\nx1 2 0\n")
        assert solver.solve() is True
        assert solver.model_value(1) is True
        assert solver.model_value(2) is False
