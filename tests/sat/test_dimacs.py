"""DIMACS parsing/writing tests."""

import pytest

from repro.errors import ParseError
from repro.sat.dimacs import load_solver, parse_dimacs, write_dimacs


class TestParse:
    def test_simple_cnf(self):
        text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        num_vars, clauses, xors = parse_dimacs(text)
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3]]
        assert xors == []

    def test_xor_rows(self):
        text = "p cnf 3 1\nx1 -2 3 0\n"
        _, clauses, xors = parse_dimacs(text)
        assert clauses == []
        assert xors == [([1, 2, 3], False)]  # one negation flips parity

    def test_missing_terminator(self):
        with pytest.raises(ParseError):
            parse_dimacs("p cnf 1 1\n1\n")

    def test_clause_before_header(self):
        with pytest.raises(ParseError):
            parse_dimacs("1 0\n")

    def test_out_of_range_literal(self):
        with pytest.raises(ParseError):
            parse_dimacs("p cnf 1 1\n2 0\n")

    def test_bad_header(self):
        with pytest.raises(ParseError):
            parse_dimacs("p dnf 1 1\n1 0\n")


class TestRoundTrip:
    def test_write_then_parse(self):
        text = write_dimacs(4, [[1, -2], [3, 4]], [([1, 4], True)])
        num_vars, clauses, xors = parse_dimacs(text)
        assert num_vars == 4
        assert clauses == [[1, -2], [3, 4]]
        assert xors == [([1, 4], True)]

    def test_negative_rhs_round_trip(self):
        text = write_dimacs(2, [], [([1, 2], False)])
        _, _, xors = parse_dimacs(text)
        assert xors == [([1, 2], False)]

    def test_load_solver_solves(self):
        solver = load_solver("p cnf 2 2\n1 0\nx1 2 0\n")
        assert solver.solve() is True
        assert solver.model_value(1) is True
        assert solver.model_value(2) is False


class TestShowLines:
    def test_show_round_trip(self):
        from repro.sat.dimacs import parse_dimacs_document
        text = write_dimacs(5, [[1, 2]], [([3, 4], True)],
                            show=[1, 3, 5])
        document = parse_dimacs_document(text)
        assert document.show == [1, 3, 5]
        assert document.clauses == [[1, 2]]
        assert document.xors == [([3, 4], True)]
        # plain parse ignores show lines (signature unchanged)
        assert parse_dimacs(text) == (5, [[1, 2]], [([3, 4], True)])

    def test_long_show_list_chunks(self):
        from repro.sat.dimacs import parse_dimacs_document
        variables = list(range(1, 48))
        text = write_dimacs(47, [], show=variables)
        assert text.count("c p show") > 1
        assert parse_dimacs_document(text).show == variables

    def test_empty_show_line(self):
        from repro.sat.dimacs import parse_dimacs_document
        text = write_dimacs(2, [[1, 2]], show=[])
        assert "c p show 0" in text
        assert parse_dimacs_document(text).show == []

    def test_bad_show_lines_rejected(self):
        from repro.sat.dimacs import parse_dimacs_document
        with pytest.raises(ParseError):
            parse_dimacs_document("c p show 1 2\np cnf 2 0\n")
        with pytest.raises(ParseError):
            parse_dimacs_document("c p show -1 0\np cnf 2 0\n")
        with pytest.raises(ParseError):
            parse_dimacs_document("c p show 9 0\np cnf 2 0\n")

    def test_plain_comments_still_ignored(self):
        text = "c hello\nc p notshow\np cnf 1 1\n1 0\n"
        assert parse_dimacs(text) == (1, [[1]], [])


class TestHeaderConvention:
    def test_header_counts_clauses_plus_xor_rows(self):
        # The pinned decision: C = CNF clauses + XOR rows (module doc).
        text = write_dimacs(4, [[1, 2], [3]], [([1, 4], True),
                                               ([2, 3], False)])
        header = next(line for line in text.splitlines()
                      if line.startswith("p cnf"))
        assert header == "p cnf 4 4"

    def test_mixed_cnf_xor_round_trip(self):
        clauses = [[1, -2, 3], [2], [-3, 4]]
        xors = [([1, 2, 3], True), ([2, 4], False)]
        text = write_dimacs(4, clauses, xors,
                            comments=["mixed instance"])
        num_vars, parsed_clauses, parsed_xors = parse_dimacs(text)
        assert (num_vars, parsed_clauses, parsed_xors) == (
            4, clauses, xors)
        # and a second write is byte-identical (stable serialisation)
        assert write_dimacs(4, parsed_clauses, parsed_xors,
                            comments=["mixed instance"]) == text
