"""Push/pop frame discipline: the incremental workload of SaturatingCounter."""

import pytest

from repro.sat import SatSolver


class TestFrames:
    def test_pop_without_push_raises(self):
        solver = SatSolver()
        with pytest.raises(RuntimeError):
            solver.pop()

    def test_clause_removed_on_pop(self):
        solver = SatSolver()
        solver.new_vars(2)
        solver.add_clause([1, 2])
        solver.push()
        solver.add_clause([-1])
        assert solver.solve() is True
        assert solver.model_value(1) is False
        assert solver.model_value(2) is True
        solver.pop()
        assert solver.solve() is True  # only (x1 or x2) remains
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model_value(1) is True

    def test_unsat_inside_frame_recovers(self):
        solver = SatSolver()
        solver.new_vars(1)
        solver.add_clause([1])
        solver.push()
        solver.add_clause([-1])
        assert solver.solve() is False
        solver.pop()
        assert solver.solve() is True

    def test_frame_vars_are_dropped(self):
        solver = SatSolver()
        solver.new_vars(2)
        solver.push()
        aux = solver.new_var()
        solver.add_clause([aux, 1])
        assert solver.num_vars() == 3
        solver.pop()
        assert solver.num_vars() == 2

    def test_xor_removed_on_pop(self):
        solver = SatSolver()
        solver.new_vars(3)
        solver.add_clause([1])
        solver.push()
        solver.add_xor([1, 2], True)   # forces x2 = false
        solver.add_clause([2, 3])      # hence x3 = true
        assert solver.solve() is True
        assert solver.model_value(2) is False
        assert solver.model_value(3) is True
        solver.pop()
        solver.add_clause([2])  # now consistent: xor gone
        assert solver.solve() is True
        assert solver.model_value(2) is True

    def test_nested_frames(self):
        solver = SatSolver()
        solver.new_vars(3)
        solver.add_clause([1, 2, 3])
        solver.push()
        solver.add_clause([-1])
        solver.push()
        solver.add_clause([-2])
        assert solver.solve() is True
        assert solver.model_value(3) is True
        solver.pop()
        solver.pop()
        assert solver.frame_depth == 0
        solver.add_clause([-3])
        assert solver.solve() is True  # x1 or x2 still possible

    def test_level0_implications_undone(self):
        """Implications derived inside a frame must not leak out."""
        solver = SatSolver()
        solver.new_vars(2)
        solver.add_clause([-1, 2])  # x1 -> x2
        solver.push()
        solver.add_clause([1])      # forces x1, x2 at level 0 in-frame
        assert solver.solve() is True
        assert solver.model_value(2) is True
        solver.pop()
        solver.add_clause([-2])     # must be consistent after pop
        assert solver.solve() is True
        assert solver.model_value(2) is False
        assert solver.model_value(1) is False

    def test_enumeration_per_cell_pattern(self):
        """The SaturatingCounter pattern: push, hash, enumerate, pop."""
        solver = SatSolver()
        variables = solver.new_vars(4)
        solver.add_clause([1, 2, 3, 4])
        total = 2 ** 4 - 1  # all assignments except all-false

        def enumerate_cell(xor_vars, rhs):
            solver.push()
            solver.add_xor(xor_vars, rhs)
            count = 0
            while solver.solve():
                count += 1
                blocking = [
                    -v if solver.model_value(v) else v for v in variables
                ]
                if not solver.add_clause(blocking):
                    break
            solver.pop()
            return count

        count0 = enumerate_cell([1, 2, 3, 4], False)
        count1 = enumerate_cell([1, 2, 3, 4], True)
        assert count0 + count1 == total
        # Original formula untouched afterwards.
        full = enumerate_cell([1, 1], False)  # vacuous xor
        assert full == total

    def test_many_frame_cycles_stay_consistent(self):
        solver = SatSolver()
        solver.new_vars(6)
        solver.add_clause([1, 2])
        solver.add_clause([-3, 4])
        for round_no in range(50):
            solver.push()
            solver.add_xor([1, 3, 5], round_no % 2 == 0)
            solver.add_clause([5, 6])
            assert solver.solve() is True
            solver.pop()
        assert solver.num_clauses() == 2
