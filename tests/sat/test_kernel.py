"""Differential tests for the unified propagation kernel.

Both search drivers run over the same storage (`repro.sat.kernel`);
these tests pin the kernel boundary from three sides:

* **BCP agreement** — the CDCL driver's verdict, the component
  driver's DPLL enumeration and brute force agree on random CNF+XOR
  clause DBs, with the production snapshot hand-off in the loop;
* **learning soundness** — the component driver counts identically
  with conflict learning on and off, including the purge discipline
  around unsatisfiable sibling components and shared presolve lemmas;
* **cache-key stability** — component splits and canonical residual
  signatures match an independent reference implementation and a
  frozen golden value (the pre-kernel substrate's cache keys).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.count_exact.counter import CcStats, _Search, _merge_driver_stats
from repro.count_exact.signature import component_signature
from repro.sat import SatSolver
from repro.sat.components import ConstraintGraph
from repro.sat.kernel import (
    ClauseDB, ComponentDriver, TRUE_V, UNSET_V, build_driver,
    presolve_lemmas,
)
from repro.utils.deadline import Deadline


# ----------------------------------------------------------------------
# brute-force references
# ----------------------------------------------------------------------
def brute_force_count(num_vars, clauses, xors=()):
    count = 0
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = (False,) + bits
        ok = all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        )
        if ok and all(
            sum(assignment[v] for v in variables) % 2 == (1 if rhs else 0)
            for variables, rhs in xors
        ):
            count += 1
    return count


def reference_residual(db, values, cid):
    """Independent reimplementation of the canonical residual forms."""
    if cid < db.num_clauses:
        open_lits = []
        for lit in db.clauses[cid]:
            value = values[abs(lit)]
            if (value == TRUE_V) == (lit > 0) and value != UNSET_V:
                return None
            if value == UNSET_V:
                open_lits.append(lit)
        return ("c", tuple(sorted(open_lits)))
    variables, rhs = db.xors[cid - db.num_clauses]
    parity = bool(rhs)
    open_vars = []
    for var in variables:
        if values[var] == UNSET_V:
            open_vars.append(var)
        elif values[var] == TRUE_V:
            parity = not parity
    if not open_vars:
        return None
    return ("x", tuple(sorted(open_vars)), parity)


# ----------------------------------------------------------------------
# random clause-DB strategy
# ----------------------------------------------------------------------
@st.composite
def clause_dbs(draw):
    num_vars = draw(st.integers(min_value=2, max_value=6))
    variables = st.integers(min_value=1, max_value=num_vars)
    clause = st.lists(variables, min_size=1, max_size=3,
                      unique=True).flatmap(
        lambda vs: st.tuples(*[st.sampled_from([v, -v]) for v in vs]))
    clauses = draw(st.lists(clause, min_size=0, max_size=8))
    xor = st.tuples(
        st.lists(variables, min_size=1, max_size=num_vars, unique=True),
        st.booleans())
    xors = draw(st.lists(xor, min_size=0, max_size=3))
    return num_vars, [list(c) for c in clauses], xors


def dpll_count(driver: ComponentDriver, num_vars: int) -> int:
    """Model count by plain DPLL over the driver (no components, no
    cache): every pruning the driver performs must be model-exact."""
    var = next((v for v in range(1, num_vars + 1)
                if driver.values[v] == UNSET_V), None)
    if var is None:
        return 1
    total = 0
    for lit in (var, -var):
        mark = driver.decide(lit)
        if mark is None:
            continue
        # Propagated literals are forced, so counting only the branches
        # of the remaining unassigned variables is exact.
        total += dpll_count(driver, num_vars)
        driver.unwind(mark)
    return total


def component_count(num_vars, clauses, xors, *, learn,
                    roots=(), seed=()):
    """A projected count over all variables through the real search
    (component splitting + caching + purge discipline)."""
    db = ClauseDB(num_vars, clauses, xors)
    driver = ComponentDriver(db, learn=learn)
    driver.seed(seed)
    stats = CcStats()
    search = _Search(driver, frozenset(range(1, num_vars + 1)),
                     Deadline(None), stats)
    if not search.assert_roots(roots):
        count = 0
    else:
        count = search.count_scope(range(1, num_vars + 1))
    _merge_driver_stats(stats, driver)
    return count, stats


# ----------------------------------------------------------------------
# BCP / counting agreement across drivers
# ----------------------------------------------------------------------
@given(clause_dbs())
@settings(max_examples=120, deadline=None)
def test_drivers_and_brute_force_agree(db):
    num_vars, clauses, xors = db
    expected = brute_force_count(num_vars, clauses, xors)

    cdcl = SatSolver()
    cdcl.new_vars(num_vars)
    ok = all(cdcl.add_clause(clause) for clause in clauses)
    ok = ok and all(cdcl.add_xor(variables, rhs)
                    for variables, rhs in xors)
    verdict = ok and cdcl.solve()
    assert verdict == (expected > 0)

    for learn in (False, True):
        count, _stats = component_count(num_vars, clauses, xors,
                                        learn=learn)
        assert count == expected


@given(clause_dbs())
@settings(max_examples=120, deadline=None)
def test_snapshot_handoff_preserves_counts(db):
    """The production path: CDCL-side construction, snapshot, component
    driver over the snapshot (its root units asserted) — model counts
    must survive the hand-off and driver learning."""
    num_vars, clauses, xors = db
    expected = brute_force_count(num_vars, clauses, xors)

    solver = SatSolver()
    solver.new_vars(num_vars)
    ok = all(solver.add_clause(clause) for clause in clauses)
    ok = ok and all(solver.add_xor(variables, rhs)
                    for variables, rhs in xors)
    snapshot = solver.snapshot()
    if not ok or not snapshot.ok:
        assert expected == 0
        return
    for learn in (False, True):
        driver = build_driver("component", snapshot, learn=learn)
        if not driver.assert_roots(snapshot.units):
            assert expected == 0
            continue
        assigned = len(driver.trail)
        count = dpll_count(driver, snapshot.num_vars)
        driver.unwind(assigned)
        # Snapshots may carry Tseitin-free formulas only, so every model
        # of the snapshot corresponds 1:1 to a model of the input here.
        assert count == expected


@given(clause_dbs())
@settings(max_examples=80, deadline=None)
def test_presolve_lemmas_are_count_preserving(db):
    """Everything `presolve_lemmas` harvests is entailed: asserting the
    units and seeding the clauses must not change the model count."""
    num_vars, clauses, xors = db
    expected = brute_force_count(num_vars, clauses, xors)
    solver = SatSolver()
    solver.new_vars(num_vars)
    ok = all(solver.add_clause(clause) for clause in clauses)
    ok = ok and all(solver.add_xor(variables, rhs)
                    for variables, rhs in xors)
    snapshot = solver.snapshot()
    if not ok or not snapshot.ok:
        assert expected == 0
        return
    verdict, units, lemmas = presolve_lemmas(snapshot)
    assert verdict == (expected > 0)
    if verdict is False:
        return
    count, stats = component_count(
        num_vars, list(snapshot.clauses), snapshot.xors, learn=True,
        roots=list(snapshot.units) + units, seed=lemmas)
    assert count == expected


# ----------------------------------------------------------------------
# learning soundness around unsatisfiable siblings
# ----------------------------------------------------------------------
def test_unsat_sibling_purges_cached_counts():
    """The purge discipline in action: an unsatisfiable component
    discovered after its siblings were cached must flush the scope's
    insertions (Sang et al. 2004) — and the counts must match the
    learning-off search exactly."""
    # vars 1-2: a satisfiable component (3 models); vars 3-4: an
    # unsatisfiable one, counted second (split orders by smallest var).
    clauses = [[1, 2],
               [3, 4], [3, -4], [-3, 4], [-3, -4]]
    for learn in (False, True):
        count, stats = component_count(4, clauses, [], learn=learn)
        assert count == 0
        if learn:
            assert stats.purged >= 1  # the cached (1 v 2) count flushed
            assert stats.conflicts >= 1


def test_learning_prunes_sibling_branches():
    """The payoff mechanism: a conflict in one branch leaves a clause
    that propagates in sibling branches of the same search."""
    # XOR chain forces conflicts once a few variables are decided.
    clauses = [[1, 2, 3], [-1, -2], [-1, -3], [-2, -3]]
    xors = [([1, 2, 3, 4], True)]
    expected = brute_force_count(4, clauses, xors)
    off, _ = component_count(4, clauses, xors, learn=False)
    on, stats = component_count(4, clauses, xors, learn=True)
    assert off == expected
    assert on == expected


@given(clause_dbs())
@settings(max_examples=80, deadline=None)
def test_full_search_learning_invariance(db):
    """Counts through the real component search (splitting + caching +
    purging) are identical with learning on and off."""
    num_vars, clauses, xors = db
    off, _ = component_count(num_vars, clauses, xors, learn=False)
    on, _ = component_count(num_vars, clauses, xors, learn=True)
    assert on == off == brute_force_count(num_vars, clauses, xors)


# ----------------------------------------------------------------------
# cache-key stability
# ----------------------------------------------------------------------
def test_constraint_graph_alias():
    """The pre-kernel substrate class is the kernel DB, not a copy —
    there is exactly one residual/split implementation to drift."""
    assert ConstraintGraph is ClauseDB


@given(clause_dbs(), st.randoms(use_true_random=False))
@settings(max_examples=120, deadline=None)
def test_residual_signatures_match_reference(db, rng):
    num_vars, clauses, xors = db
    graph = ClauseDB(num_vars, clauses, xors)
    values = [UNSET_V] + [rng.choice([-1, 0, 0, 1])
                          for _ in range(num_vars)]
    for cid in range(len(graph)):
        assert (graph.residual(values, cid)
                == reference_residual(graph, values, cid))
    components, free = graph.split(values, range(1, num_vars + 1))
    seen = set()
    for component in components:
        # disjoint, sorted, signature built from member residuals only
        assert list(component.variables) == sorted(component.variables)
        assert not seen & set(component.variables)
        seen |= set(component.variables)
        signature = component_signature(graph, values, component)
        assert signature == tuple(sorted(
            reference_residual(graph, values, cid)
            for cid in component.constraints))
    for var in free:
        assert values[var] == UNSET_V
        assert all(var not in component.variables
                   for component in components)


def test_signature_golden_value():
    """Frozen cache key: if this changes, every persisted component
    cache entry and the PR 5 differential baselines shift."""
    graph = ClauseDB(4, [[1, 2], [-2, 3]], [([3, 4], True)])
    values = [UNSET_V] * 5
    values[1] = -1  # var 1 = false
    components, free = graph.split(values, range(1, 5))
    assert free == []
    assert len(components) == 1
    signature = component_signature(graph, values, components[0])
    assert signature == (("c", (-2, 3)), ("c", (2,)),
                         ("x", (3, 4), True))


# ----------------------------------------------------------------------
# search-policy differentials: blocking literals, LBD reduction,
# Glucose restarts — every knob must leave verdicts (hence counts)
# bit-identical
# ----------------------------------------------------------------------
def _cdcl_verdict(num_vars, clauses, xors, *, use_blockers=True,
                  reduce_policy="lbd", restart_policy="luby",
                  max_learnts=4000.0):
    solver = SatSolver()
    solver.new_vars(num_vars)
    solver.use_blockers = use_blockers
    solver.reduce_policy = reduce_policy
    solver.restart_policy = restart_policy
    solver._max_learnts = max_learnts
    ok = all(solver.add_clause(clause) for clause in clauses)
    ok = ok and all(solver.add_xor(variables, rhs)
                    for variables, rhs in xors)
    return ok and solver.solve()


@given(clause_dbs())
@settings(max_examples=100, deadline=None)
def test_blocking_literals_on_off_differential(db):
    num_vars, clauses, xors = db
    expected = brute_force_count(num_vars, clauses, xors) > 0
    for use_blockers in (False, True):
        assert _cdcl_verdict(num_vars, clauses, xors,
                             use_blockers=use_blockers) == expected


@given(clause_dbs())
@settings(max_examples=100, deadline=None)
def test_reduction_and_restart_policies_differential(db):
    """Verdicts under every (reduce, restart) policy pair match brute
    force, with the learnt-DB cap forced low enough that reduction
    actually runs on these instances."""
    num_vars, clauses, xors = db
    expected = brute_force_count(num_vars, clauses, xors) > 0
    for reduce_policy in ("lbd", "activity"):
        for restart_policy in ("luby", "glucose"):
            assert _cdcl_verdict(
                num_vars, clauses, xors, reduce_policy=reduce_policy,
                restart_policy=restart_policy,
                max_learnts=0.0) == expected


def test_lbd_recorded_and_glue_protected():
    """Learnt clauses carry their LBD, and LBD reduction never deletes
    glue clauses (lbd <= GLUE_LBD) even under a zero learnt cap."""
    from repro.sat.kernel import GLUE_LBD

    solver = SatSolver()
    solver._max_learnts = 0.0
    nv = 10
    solver.new_vars(nv)
    # Pairwise at-most-one over 10 vars plus at-least-one: heavily
    # conflicting, so the driver learns and reduces.
    solver.add_clause(list(range(1, nv + 1)))
    for a in range(1, nv + 1):
        for b in range(a + 1, nv + 1):
            solver.add_clause([-a, -b])
    solver.add_xor(list(range(1, nv + 1)), False)  # parity 0: UNSAT
    assert solver.solve() is False
    learnt = [c for c in solver._learnts if not c.deleted]
    assert all(c.lbd >= 1 for c in learnt)
    # Re-run reduction by hand: glue clauses must survive it.
    glue_before = [c for c in learnt if c.lbd <= GLUE_LBD]
    solver._reduce_db()
    assert all(not c.deleted for c in glue_before)


def test_glucose_policy_restarts_and_agrees():
    """On a conflict-heavy UNSAT instance the Glucose policy restarts
    at least once and agrees with Luby's verdict."""
    nv = 12
    clauses = [list(range(1, nv + 1))]
    clauses += [[-a, -b] for a in range(1, nv + 1)
                for b in range(a + 1, nv + 1)]
    xors = [(list(range(1, nv + 1)), False)]

    verdicts = {}
    for policy in ("luby", "glucose"):
        solver = SatSolver()
        solver.new_vars(nv)
        solver.restart_policy = policy
        for clause in clauses:
            solver.add_clause(clause)
        for variables, rhs in xors:
            solver.add_xor(variables, rhs)
        verdicts[policy] = solver.solve()
        if policy == "glucose" and solver.stats["conflicts"] > 200:
            assert solver.stats["restarts"] >= 1
    assert verdicts["luby"] is verdicts["glucose"] is False


def test_component_driver_counts_propagations():
    count, stats = component_count(3, [[1, 2], [-1, 3]], [], learn=True)
    assert count == brute_force_count(3, [[1, 2], [-1, 3]])
    assert stats.propagations > 0


def test_driver_split_and_residual_delegate_to_db():
    """ComponentDriver's split/residual are the DB's own — learnt
    clauses must never leak into components or signatures."""
    db = ClauseDB(4, [[1, 2], [3, 4]])
    driver = ComponentDriver(db, learn=True)
    driver.seed([(-1, -3)])  # a (true) lemma spanning both components
    components, free = driver.split(range(1, 5))
    assert [c.variables for c in components] == [(1, 2), (3, 4)]
    assert driver.residual(0) == ("c", (1, 2))
    baseline = ClauseDB(4, [[1, 2], [3, 4]])
    values = [UNSET_V] * 5
    assert baseline.split(values, range(1, 5))[0] == components
