"""Differential tests for the array-packed BCP prototype.

``PackedPropagator`` computes the *full* propagation fixpoint of
F ∧ roots in vectorised rounds; unit propagation is confluent, so that
fixpoint must equal a sequential reference's — same assignments,
conflict iff the reference conflicts.  The reference here is an
independent scan-to-fixpoint loop with the kernel's constraint
semantics (``ClauseDB.propagate`` itself is incremental from the trail,
a different contract).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.kernel import ClauseDB
from repro.sat.packed import HAVE_NUMPY, PackedPropagator

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="numpy not installed")


def reference_fixpoint(num_vars, clauses, xors, roots):
    """Scan every constraint to fixpoint; None on conflict."""
    values = [0] * (num_vars + 1)
    for lit in roots:
        var, sign = abs(lit), (1 if lit > 0 else -1)
        if values[var] == -sign:
            return None
        values[var] = sign
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            n_unset, satisfied, unit = 0, False, 0
            for lit in clause:
                value = values[abs(lit)] * (1 if lit > 0 else -1)
                if value == 1:
                    satisfied = True
                    break
                if value == 0:
                    n_unset += 1
                    unit = lit
            if satisfied or n_unset > 1:
                continue
            if n_unset == 0:
                return None
            values[abs(unit)] = 1 if unit > 0 else -1
            changed = True
        for variables, rhs in xors:
            n_unset, parity, open_var = 0, bool(rhs), 0
            for var in variables:
                if values[var] == 0:
                    n_unset += 1
                    open_var = var
                elif values[var] == 1:
                    parity = not parity
            if n_unset > 1:
                continue
            if n_unset == 0:
                if parity:
                    return None
                continue
            values[open_var] = 1 if parity else -1
            changed = True
    return values


@st.composite
def packed_problems(draw):
    num_vars = draw(st.integers(min_value=2, max_value=7))
    variables = st.integers(min_value=1, max_value=num_vars)
    clause = st.lists(variables, min_size=1, max_size=3,
                      unique=True).flatmap(
        lambda vs: st.tuples(*[st.sampled_from([v, -v]) for v in vs]))
    clauses = draw(st.lists(clause, min_size=0, max_size=9))
    xor = st.tuples(
        st.lists(variables, min_size=1, max_size=num_vars, unique=True),
        st.booleans())
    xors = draw(st.lists(xor, min_size=0, max_size=3))
    root_vars = draw(st.lists(variables, unique=True, max_size=num_vars))
    roots = [draw(st.sampled_from([v, -v])) for v in root_vars]
    return num_vars, [list(c) for c in clauses], xors, roots


@given(packed_problems())
@settings(max_examples=150, deadline=None)
def test_packed_matches_reference_fixpoint(problem):
    num_vars, clauses, xors, roots = problem
    packed = PackedPropagator(ClauseDB(num_vars, clauses, xors))
    assert (packed.propagate(roots)
            == reference_fixpoint(num_vars, clauses, xors, roots))


def test_empty_database():
    packed = PackedPropagator(ClauseDB(3, [], []))
    assert packed.propagate([2, -3]) == [0, 0, 1, -1]
    assert packed.propagate([1, -1]) is None


def test_round_conflict_on_opposing_units():
    # Two clauses force opposite values of var 2 in the same round.
    packed = PackedPropagator(ClauseDB(2, [[-1, 2], [-1, -2]]))
    assert packed.propagate([1]) is None


def test_xor_units_and_conflicts():
    packed = PackedPropagator(ClauseDB(3, [], [([1, 2, 3], True)]))
    assert packed.propagate([1, 2]) == [0, 1, 1, 1]
    packed = PackedPropagator(ClauseDB(2, [], [([1, 2], False)]))
    assert packed.propagate([1, -2]) is None
