"""Learnt-clause retention soundness and XorEngine.truncate coverage.

Retention keeps learnt clauses across ``pop()`` when their whole
derivation predates the popped frame.  Soundness criterion: retained
clauses are *entailed* by the surviving formula, so model enumeration
after any push/solve/pop history returns exactly the same model set as a
fresh solver — cross-checked against brute-force enumeration via
``XorEngine.check_model`` and direct clause evaluation.
"""

import random

import pytest

from repro.sat import SatSolver


def _random_instance(rng, num_vars, num_clauses, num_xors):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(2, 3)
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v
                        for v in variables])
    xors = []
    for _ in range(num_xors):
        width = rng.randint(2, 4)
        xors.append((rng.sample(range(1, num_vars + 1), width),
                     rng.random() < 0.5))
    return clauses, xors


def _brute_force_models(num_vars, clauses, xors):
    models = set()
    for bits in range(1 << num_vars):
        assignment = [False] + [bool((bits >> (v - 1)) & 1)
                                for v in range(1, num_vars + 1)]
        ok = all(any(assignment[l] if l > 0 else not assignment[-l]
                     for l in clause) for clause in clauses)
        if ok:
            for variables, rhs in xors:
                if (sum(assignment[v] for v in variables) & 1) != rhs:
                    ok = False
                    break
        if ok:
            models.add(bits)
    return models


def _enumerate_models(solver, num_vars):
    """All models in the solver's current frame (enumerated in a nested
    blocking frame, like SaturatingCounter)."""
    models = set()
    solver.push()
    while solver.solve():
        bits = 0
        blocking = []
        for v in range(1, num_vars + 1):
            value = solver.model_value(v)
            if value:
                bits |= 1 << (v - 1)
            blocking.append(-v if value else v)
        models.add(bits)
        # XOR rows must agree with the model the solver reports.
        assert solver.xor.check_model(solver.true_mask)
        if not solver.add_clause(blocking):
            break
    solver.pop()
    return models


def _build(clauses, xors, num_vars):
    solver = SatSolver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    for variables, rhs in xors:
        solver.add_xor(variables, rhs)
    return solver


class TestRetentionSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_model_set_exact_after_frame_cycles(self, seed):
        """Randomized push/solve/pop cycles never lose or invent models."""
        rng = random.Random(900 + seed)
        num_vars = 8
        base_clauses, base_xors = _random_instance(rng, num_vars, 6, 2)
        solver = _build(base_clauses, base_xors, num_vars)
        assert solver.retain_learnts

        for _ in range(6):
            extra_clauses, extra_xors = _random_instance(rng, num_vars,
                                                         3, 2)
            solver.push()
            for clause in extra_clauses:
                solver.add_clause(clause)
            for variables, rhs in extra_xors:
                solver.add_xor(variables, rhs)
            got = _enumerate_models(solver, num_vars)
            want = _brute_force_models(
                num_vars, base_clauses + extra_clauses,
                base_xors + extra_xors)
            assert got == want
            solver.pop()

        # After all pops (with whatever clauses were retained), the base
        # formula's model set is exactly the brute-force one.
        got = _enumerate_models(solver, num_vars)
        assert got == _brute_force_models(num_vars, base_clauses,
                                          base_xors)

    @pytest.mark.parametrize("seed", range(4))
    def test_retention_matches_delete_everything(self, seed):
        """Retained-mode model sets equal delete-everything-mode sets."""
        rng = random.Random(7700 + seed)
        num_vars = 7
        base_clauses, base_xors = _random_instance(rng, num_vars, 5, 2)
        frames = [_random_instance(rng, num_vars, 3, 1)
                  for _ in range(4)]

        def run(retain):
            solver = _build(base_clauses, base_xors, num_vars)
            solver.retain_learnts = retain
            sets = []
            for extra_clauses, extra_xors in frames:
                solver.push()
                for clause in extra_clauses:
                    solver.add_clause(clause)
                for variables, rhs in extra_xors:
                    solver.add_xor(variables, rhs)
                sets.append(_enumerate_models(solver, num_vars))
                solver.pop()
            sets.append(_enumerate_models(solver, num_vars))
            return sets, solver.stats["retained_learnts"]

        retained_sets, retained_count = run(True)
        plain_sets, plain_count = run(False)
        assert retained_sets == plain_sets
        assert plain_count == 0

    def test_retained_clauses_are_entailed(self):
        """Every clause surviving a pop is satisfied by every model of
        the surviving formula (direct entailment check)."""
        rng = random.Random(31)
        num_vars = 8
        base_clauses, base_xors = _random_instance(rng, num_vars, 7, 3)
        solver = _build(base_clauses, base_xors, num_vars)
        for _ in range(5):
            extra_clauses, extra_xors = _random_instance(rng, num_vars,
                                                         4, 1)
            solver.push()
            for clause in extra_clauses:
                solver.add_clause(clause)
            for variables, rhs in extra_xors:
                solver.add_xor(variables, rhs)
            _enumerate_models(solver, num_vars)
            solver.pop()
        survivors = [c for c in solver._learnts if not c.deleted]
        models = _brute_force_models(num_vars, base_clauses, base_xors)
        for bits in models:
            assignment = [False] + [bool((bits >> (v - 1)) & 1)
                                    for v in range(1, num_vars + 1)]
            for clause in survivors:
                assert any(assignment[l] if l > 0 else not assignment[-l]
                           for l in clause.lits), (
                    f"retained clause {clause.lits} kills model {bits:b}")

    @pytest.mark.parametrize("seed", range(6))
    def test_ladder_shape_retains_and_stays_sound(self, seed):
        """The hash-ladder workload (stacked XOR frames, enumeration in a
        nested blocking frame) actually exercises retention — and the
        model sets on the way down are still exact."""
        rng = random.Random(seed)
        num_vars = 10
        base_clauses = []
        solver = SatSolver()
        solver.new_vars(num_vars)
        for _ in range(10):
            variables = rng.sample(range(1, num_vars + 1), 3)
            base_clauses.append([v if rng.random() < 0.5 else -v
                                 for v in variables])
            solver.add_clause(base_clauses[-1])
        rungs = []
        for _ in range(2):   # two ladder rungs of two XORs each
            rung = [(rng.sample(range(1, num_vars + 1),
                                rng.randint(3, 5)), rng.random() < 0.5)
                    for _ in range(2)]
            rungs.append(rung)
            solver.push()
            for variables, rhs in rung:
                solver.add_xor(variables, rhs)
        _enumerate_models(solver, num_vars)  # learn at full depth
        solver.pop()                         # drop rung 2, keep rung 1
        assert solver.stats["retained_learnts"] > 0
        got = _enumerate_models(solver, num_vars)
        assert got == _brute_force_models(num_vars, base_clauses,
                                          rungs[0])
        solver.pop()
        got = _enumerate_models(solver, num_vars)
        assert got == _brute_force_models(num_vars, base_clauses, [])

    def test_frame_local_variables_never_retained(self):
        solver = SatSolver()
        solver.new_vars(3)
        solver.add_clause([1, 2, 3])
        solver.push()
        aux = solver.new_var()
        solver.add_clause([-aux, 1])
        solver.add_clause([aux, 2])
        while solver.solve():
            blocking = [-v if solver.model_value(v) else v
                        for v in range(1, 5)]
            if not solver.add_clause(blocking):
                break
        solver.pop()
        assert solver.num_vars() == 3
        for clause in solver._learnts:
            if not clause.deleted:
                assert all(abs(l) <= 3 for l in clause.lits)


class TestXorTruncate:
    def test_truncate_rebuilds_watch_lists(self):
        solver = SatSolver()
        solver.new_vars(6)
        mark = solver.xor.mark()
        assert mark == 0
        solver.add_xor([1, 2, 3], True)
        inner = solver.xor.mark()
        solver.add_xor([4, 5], False)
        solver.add_xor([2, 5, 6], True)
        assert len(solver.xor) == 3
        solver.xor.truncate(inner)
        assert len(solver.xor) == 1
        # Every watch entry points at a live row watching that variable.
        for var, rows in solver.xor._watch.items():
            for index in rows:
                row = solver.xor.rows[index]
                assert var in (row.w1, row.w2)
        # The surviving row still propagates: x1 xor x2 xor x3 = 1.
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is True
        assert solver.model_value(3) is True

    def test_truncate_beyond_rows_raises(self):
        solver = SatSolver()
        solver.new_vars(2)
        with pytest.raises(ValueError):
            solver.xor.truncate(5)

    @pytest.mark.parametrize("seed", range(4))
    def test_repeated_push_solve_pop_with_xors(self, seed):
        """Stacked XOR frames + truncation stay consistent with brute
        force across many cycles (watch-list rebuild under churn)."""
        rng = random.Random(4400 + seed)
        num_vars = 7
        base_clauses, base_xors = _random_instance(rng, num_vars, 4, 2)
        solver = _build(base_clauses, base_xors, num_vars)
        for _ in range(8):
            extra = [(rng.sample(range(1, num_vars + 1), rng.randint(2, 4)),
                      rng.random() < 0.5) for _ in range(2)]
            solver.push()
            for variables, rhs in extra:
                solver.add_xor(variables, rhs)
            got = _enumerate_models(solver, num_vars)
            want = _brute_force_models(num_vars, base_clauses,
                                       base_xors + extra)
            assert got == want
            solver.pop()
            assert len(solver.xor) <= len(base_xors)
