"""SatSolver.snapshot()/clone_from(): the compile pipeline's clause-DB
transfer must preserve satisfiability and projected counts exactly."""

import pickle
import random

import pytest

from repro.sat.solver import SatSolver
from repro.utils.deadline import Deadline


def _random_instance(seed, num_vars=8, num_clauses=18, num_xors=3):
    rng = random.Random(seed)
    solver = SatSolver()
    solver.new_vars(num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        lits = []
        for var in rng.sample(range(1, num_vars + 1), width):
            lits.append(var if rng.random() < 0.5 else -var)
        solver.add_clause(lits)
    for _ in range(num_xors):
        width = rng.randint(2, 4)
        variables = rng.sample(range(1, num_vars + 1), width)
        solver.add_xor(variables, rng.random() < 0.5)
    return solver


def _count_models(solver, variables):
    """Projected model count by blocking enumeration."""
    if not solver.ok:
        return 0
    solver.push()
    try:
        count = 0
        while solver.solve(deadline=Deadline(30)):
            count += 1
            assert count <= 1 << len(variables)
            blocking = [-var if solver.model_value(var) else var
                        for var in variables]
            if not solver.add_clause(blocking):
                break
        return count
    finally:
        solver.pop()


class TestSnapshotCloneEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_projected_counts_identical(self, seed):
        original = _random_instance(seed)
        snap = original.snapshot()
        clone = SatSolver.from_snapshot(snap)
        projection = [1, 2, 3, 4]
        assert (_count_models(original, projection)
                == _count_models(clone, projection))

    @pytest.mark.parametrize("seed", range(10))
    def test_sat_answer_identical(self, seed):
        original = _random_instance(seed, num_clauses=30)
        clone = SatSolver.from_snapshot(original.snapshot())
        assert (original.solve(deadline=Deadline(30))
                == clone.solve(deadline=Deadline(30)))

    def test_unsat_root_state_round_trips(self):
        solver = SatSolver()
        solver.new_vars(2)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.ok
        clone = SatSolver.from_snapshot(solver.snapshot())
        assert not clone.ok
        assert clone.solve() is False

    def test_snapshot_excludes_learnts_and_frames(self):
        solver = _random_instance(3)
        solver.solve(deadline=Deadline(30))  # may learn clauses
        snap = solver.snapshot()
        assert all(len(clause) >= 1 for clause in snap.clauses)
        clone = SatSolver.from_snapshot(snap)
        assert clone.num_learnts() == 0
        assert clone.frame_depth == 0


class TestSnapshotDiscipline:
    def test_snapshot_inside_frame_rejected(self):
        solver = SatSolver()
        solver.new_vars(2)
        solver.push()
        with pytest.raises(RuntimeError, match="frame depth 0"):
            solver.snapshot()

    def test_clone_into_dirty_solver_rejected(self):
        source = _random_instance(1)
        dirty = SatSolver()
        dirty.new_var()
        with pytest.raises(RuntimeError, match="pristine"):
            dirty.clone_from(source.snapshot())

    def test_snapshot_pickles(self):
        snap = _random_instance(5).snapshot()
        revived = pickle.loads(pickle.dumps(snap))
        assert revived == snap
        assert (SatSolver.from_snapshot(revived).solve(
            deadline=Deadline(30))
            == SatSolver.from_snapshot(snap).solve(deadline=Deadline(30)))

    def test_units_survive_round_trip(self):
        solver = SatSolver()
        solver.new_vars(4)
        solver.add_clause([2])
        solver.add_clause([-2, 3])  # propagates 3 at root
        snap = solver.snapshot()
        assert 2 in snap.units and 3 in snap.units
        clone = SatSolver.from_snapshot(snap)
        clone.solve()
        assert clone.model_value(2) and clone.model_value(3)
