"""Unit tests for the CDCL core: propagation, conflicts, small formulas."""

import pytest

from repro.errors import ResourceBudgetError, SolverTimeoutError
from repro.sat import SatSolver
from repro.utils.deadline import Deadline


def make_solver(n):
    solver = SatSolver()
    solver.new_vars(n)
    return solver


class TestConstruction:
    def test_new_vars_are_sequential(self):
        solver = SatSolver()
        assert solver.new_vars(3) == [1, 2, 3]
        assert solver.num_vars() == 3

    def test_add_clause_unknown_var_raises(self):
        solver = make_solver(2)
        with pytest.raises(ValueError):
            solver.add_clause([3])

    def test_tautology_is_dropped(self):
        solver = make_solver(1)
        assert solver.add_clause([1, -1])
        assert solver.num_clauses() == 0

    def test_duplicate_literals_collapse(self):
        solver = make_solver(2)
        solver.add_clause([1, 1, 2])
        assert solver.num_clauses() == 1

    def test_empty_clause_is_unsat(self):
        solver = make_solver(1)
        assert not solver.add_clause([])
        assert solver.solve() is False


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        solver = make_solver(2)
        assert solver.solve() is True

    def test_single_unit(self):
        solver = make_solver(1)
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model_value(1) is True
        assert solver.model_value(-1) is False

    def test_contradicting_units(self):
        solver = make_solver(1)
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert solver.solve() is False

    def test_implication_chain(self):
        solver = make_solver(4)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, 4])
        assert solver.solve() is True
        assert all(solver.model_value(v) for v in (1, 2, 3, 4))

    def test_simple_unsat(self):
        solver = make_solver(2)
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        assert solver.solve() is False

    def test_pigeonhole_3_into_2(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance.
        solver = make_solver(6)  # var(p, h) = 2p + h - 2 for p in 1..3
        def var(p, h):
            return 2 * (p - 1) + h
        for p in (1, 2, 3):
            solver.add_clause([var(p, 1), var(p, 2)])
        for h in (1, 2):
            for p1 in (1, 2, 3):
                for p2 in range(p1 + 1, 4):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve() is False

    def test_model_satisfies_clauses(self):
        solver = make_solver(5)
        clauses = [[1, 2, -3], [-1, 4], [3, -4, 5], [-2, -5], [2, 3, 4]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is True
        model = solver.model()
        for clause in clauses:
            assert any(
                model[abs(lit)] == (lit > 0) for lit in clause
            ), f"clause {clause} unsatisfied"

    def test_solve_is_repeatable(self):
        solver = make_solver(3)
        solver.add_clause([1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() is True
        assert solver.solve() is True


class TestBudgets:
    def test_expired_deadline_raises(self):
        solver = make_solver(30)
        import random
        rng = random.Random(7)
        for _ in range(120):
            clause = rng.sample(range(1, 31), 3)
            solver.add_clause([v if rng.random() < 0.5 else -v for v in clause])
        with pytest.raises(SolverTimeoutError):
            solver.solve(deadline=Deadline(0.0))

    def test_conflict_budget_raises(self):
        # A hard instance (pigeonhole 6 into 5) with a tiny conflict budget.
        n_pigeons, n_holes = 6, 5
        solver = make_solver(n_pigeons * n_holes)
        def var(p, h):
            return (p - 1) * n_holes + h
        for p in range(1, n_pigeons + 1):
            solver.add_clause([var(p, h) for h in range(1, n_holes + 1)])
        for h in range(1, n_holes + 1):
            for p1 in range(1, n_pigeons + 1):
                for p2 in range(p1 + 1, n_pigeons + 1):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        with pytest.raises(ResourceBudgetError):
            solver.solve(conflict_budget=10)


class TestBlockingEnumeration:
    def test_enumerate_all_models(self):
        # x1 or x2 has exactly 3 models over 2 vars.
        solver = make_solver(2)
        solver.add_clause([1, 2])
        models = set()
        while solver.solve():
            model = tuple(solver.model_value(v) for v in (1, 2))
            models.add(model)
            blocking = [
                -v if solver.model_value(v) else v for v in (1, 2)
            ]
            solver.add_clause(blocking)
        assert models == {(True, False), (False, True), (True, True)}
