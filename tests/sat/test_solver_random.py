"""Randomised cross-checks of the CDCL solver against brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import SatSolver


def brute_force_sat(num_vars, clauses, xors=()):
    """Exhaustive satisfiability check for small instances."""
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = (False,) + bits  # 1-based
        ok = all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        )
        if ok and all(
            sum(assignment[v] for v in variables) % 2 == (1 if rhs else 0)
            for variables, rhs in xors
        ):
            return True
    return False


def brute_force_count(num_vars, clauses, xors=()):
    count = 0
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = (False,) + bits
        ok = all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        )
        if ok and all(
            sum(assignment[v] for v in variables) % 2 == (1 if rhs else 0)
            for variables, rhs in xors
        ):
            count += 1
    return count


def random_clauses(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return clauses


@pytest.mark.parametrize("seed", range(30))
def test_random_3sat_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(3, 9)
    num_clauses = rng.randint(2, 4 * num_vars)
    clauses = random_clauses(rng, num_vars, num_clauses)
    solver = SatSolver()
    solver.new_vars(num_vars)
    consistent = True
    for clause in clauses:
        consistent = solver.add_clause(clause) and consistent
    expected = brute_force_sat(num_vars, clauses)
    if not consistent:
        assert expected is False
    else:
        result = solver.solve()
        assert result == expected
        if result:
            model = solver.model()
            for clause in clauses:
                assert any(model[abs(lit)] == (lit > 0) for lit in clause)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_hypothesis_random_instances(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(2, 8)
    clauses = random_clauses(rng, num_vars, rng.randint(1, 24))
    solver = SatSolver()
    solver.new_vars(num_vars)
    consistent = True
    for clause in clauses:
        consistent = solver.add_clause(clause) and consistent
    expected = brute_force_sat(num_vars, clauses)
    result = solver.solve() if consistent else False
    assert result == expected


@pytest.mark.parametrize("seed", range(12))
def test_enumeration_matches_brute_force_count(seed):
    """Blocking-clause enumeration yields exactly the brute-force count."""
    rng = random.Random(1000 + seed)
    num_vars = rng.randint(2, 7)
    clauses = random_clauses(rng, num_vars, rng.randint(1, 12))
    solver = SatSolver()
    solver.new_vars(num_vars)
    consistent = True
    for clause in clauses:
        consistent = solver.add_clause(clause) and consistent
    expected = brute_force_count(num_vars, clauses)
    if not consistent:
        assert expected == 0
        return
    count = 0
    while solver.solve():
        count += 1
        assert count <= 2 ** num_vars, "enumeration runaway"
        blocking = [
            -v if solver.model_value(v) else v
            for v in range(1, num_vars + 1)
        ]
        if not solver.add_clause(blocking):
            break
    assert count == expected
