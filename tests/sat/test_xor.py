"""Tests for the native XOR engine, including CNF/XOR mixes."""

import random

import pytest

from repro.sat import SatSolver
from tests.sat.test_solver_random import (
    brute_force_count,
    brute_force_sat,
    random_clauses,
)


class TestXorBasics:
    def test_unit_xor_forces_value(self):
        solver = SatSolver()
        solver.new_vars(1)
        solver.add_xor([1], True)
        assert solver.solve() is True
        assert solver.model_value(1) is True

    def test_empty_odd_xor_is_unsat(self):
        solver = SatSolver()
        solver.new_vars(1)
        # x ^ x = 1 simplifies to 0 = 1.
        assert not solver.add_xor([1, 1], True)
        assert solver.solve() is False

    def test_duplicate_vars_cancel(self):
        solver = SatSolver()
        solver.new_vars(2)
        # x1 ^ x1 ^ x2 = 1  simplifies to  x2 = 1.
        solver.add_xor([1, 1, 2], True)
        assert solver.solve() is True
        assert solver.model_value(2) is True

    def test_two_var_equivalence(self):
        solver = SatSolver()
        solver.new_vars(2)
        solver.add_xor([1, 2], False)  # x1 = x2
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model_value(2) is True

    def test_xor_chain_propagates(self):
        solver = SatSolver()
        solver.new_vars(4)
        solver.add_xor([1, 2], True)
        solver.add_xor([2, 3], True)
        solver.add_xor([3, 4], True)
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model_value(1) is True
        assert solver.model_value(2) is False
        assert solver.model_value(3) is True
        assert solver.model_value(4) is False

    def test_inconsistent_xor_triangle(self):
        solver = SatSolver()
        solver.new_vars(3)
        solver.add_xor([1, 2], True)
        solver.add_xor([2, 3], True)
        solver.add_xor([1, 3], True)  # sum of the three: 0 = 1
        assert solver.solve() is False

    def test_xor_with_level0_fixed_var(self):
        solver = SatSolver()
        solver.new_vars(3)
        solver.add_clause([1])  # fixes x1 = true at level 0
        solver.add_xor([1, 2, 3], True)  # x2 ^ x3 = 0
        solver.add_clause([2])
        assert solver.solve() is True
        assert solver.model_value(3) is True


class TestXorRandom:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_gf2_systems(self, seed):
        """Pure XOR systems: solver agrees with brute force."""
        rng = random.Random(seed)
        num_vars = rng.randint(2, 8)
        xors = []
        for _ in range(rng.randint(1, num_vars + 3)):
            size = rng.randint(1, num_vars)
            variables = rng.sample(range(1, num_vars + 1), size)
            xors.append((variables, rng.random() < 0.5))
        solver = SatSolver()
        solver.new_vars(num_vars)
        consistent = True
        for variables, rhs in xors:
            consistent = solver.add_xor(variables, rhs) and consistent
        expected = brute_force_sat(num_vars, [], xors)
        result = solver.solve() if consistent else False
        assert result == expected
        if result:
            model = solver.model()
            for variables, rhs in xors:
                parity = sum(model[v] for v in variables) % 2
                assert parity == (1 if rhs else 0)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_cnf_xor_mix(self, seed):
        """CNF + XOR mixes: the pact_xor workload shape."""
        rng = random.Random(500 + seed)
        num_vars = rng.randint(3, 8)
        clauses = random_clauses(rng, num_vars, rng.randint(1, 12))
        xors = []
        for _ in range(rng.randint(1, 4)):
            size = rng.randint(2, num_vars)
            variables = rng.sample(range(1, num_vars + 1), size)
            xors.append((variables, rng.random() < 0.5))
        solver = SatSolver()
        solver.new_vars(num_vars)
        consistent = True
        for clause in clauses:
            consistent = solver.add_clause(clause) and consistent
        for variables, rhs in xors:
            consistent = solver.add_xor(variables, rhs) and consistent
        expected = brute_force_sat(num_vars, clauses, xors)
        result = solver.solve() if consistent else False
        assert result == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_enumeration_with_xor(self, seed):
        """Counting under XOR constraints matches brute force.

        This is precisely what SaturatingCounter does per cell."""
        rng = random.Random(900 + seed)
        num_vars = rng.randint(3, 7)
        clauses = random_clauses(rng, num_vars, rng.randint(0, 6))
        xors = []
        for _ in range(rng.randint(1, 3)):
            variables = rng.sample(
                range(1, num_vars + 1), rng.randint(2, num_vars))
            xors.append((variables, rng.random() < 0.5))
        solver = SatSolver()
        solver.new_vars(num_vars)
        consistent = True
        for clause in clauses:
            consistent = solver.add_clause(clause) and consistent
        for variables, rhs in xors:
            consistent = solver.add_xor(variables, rhs) and consistent
        expected = brute_force_count(num_vars, clauses, xors)
        if not consistent:
            assert expected == 0
            return
        count = 0
        while solver.solve():
            count += 1
            assert count <= 2 ** num_vars
            blocking = [
                -v if solver.model_value(v) else v
                for v in range(1, num_vars + 1)
            ]
            if not solver.add_clause(blocking):
                break
        assert count == expected

    def test_xor_halves_solution_count_statistically(self):
        """A random XOR over all vars should roughly halve the count —
        the core cell-splitting property pact relies on."""
        rng = random.Random(4242)
        num_vars = 8
        halved = 0
        trials = 20
        for _ in range(trials):
            variables = rng.sample(range(1, num_vars + 1),
                                   rng.randint(2, num_vars))
            rhs = rng.random() < 0.5
            count = brute_force_count(num_vars, [], [(variables, rhs)])
            assert count == 2 ** (num_vars - 1)
            halved += 1
        assert halved == trials
