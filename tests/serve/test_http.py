"""The minimal HTTP layer: parsing, framing, limits, the tiny client."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES, HttpError, HttpRequest, http_request, read_request,
    response_bytes,
)


def _parse(raw: bytes) -> HttpRequest | None:
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(scenario())


class TestReadRequest:
    def test_get_with_query(self):
        request = _parse(b"GET /jobs/j1?full=1&x=y HTTP/1.1\r\n"
                         b"Host: localhost\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/jobs/j1"
        assert request.query == {"full": "1", "x": "y"}
        assert request.headers["host"] == "localhost"
        assert request.body == b""

    def test_post_with_body(self):
        body = json.dumps({"script": "(assert true)"}).encode()
        request = _parse(b"POST /count HTTP/1.1\r\n"
                         b"Content-Type: application/json\r\n"
                         + f"Content-Length: {len(body)}\r\n\r\n".encode()
                         + body)
        assert request.method == "POST"
        assert request.json() == {"script": "(assert true)"}

    def test_header_names_lowercased(self):
        request = _parse(b"GET / HTTP/1.1\r\nX-Tenant: acme\r\n\r\n")
        assert request.headers["x-tenant"] == "acme"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_bare_lf_lines_accepted(self):
        request = _parse(b"GET / HTTP/1.1\nHost: x\n\n")
        assert request.method == "GET"

    @pytest.mark.parametrize("raw,status", [
        (b"GARBAGE\r\n\r\n", 400),                      # request line
        (b"GET /\r\n\r\n", 400),                        # missing version
        (b"GET / FTP/1.1\r\n\r\n", 400),                # not HTTP
        (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
        (b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        (b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
        (b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
        (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
        (b"GET / HTTP/1.1\r\nHost", 400),               # truncated header
    ])
    def test_malformed_raises_with_status(self, raw, status):
        with pytest.raises(HttpError) as excinfo:
            _parse(raw)
        assert excinfo.value.status == status

    def test_oversized_body_is_413(self):
        raw = (f"POST / HTTP/1.1\r\nContent-Length: "
               f"{MAX_BODY_BYTES + 1}\r\n\r\n").encode()
        with pytest.raises(HttpError) as excinfo:
            _parse(raw)
        assert excinfo.value.status == 413

    def test_oversized_header_line_is_431(self):
        raw = b"GET / HTTP/1.1\r\nX-Big: " + b"a" * (17 * 1024) + b"\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            _parse(raw)
        assert excinfo.value.status == 431

    def test_too_many_headers_is_431(self):
        lines = b"".join(f"X-H{n}: v\r\n".encode() for n in range(101))
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET / HTTP/1.1\r\n" + lines + b"\r\n")
        assert excinfo.value.status == 431


class TestKeepAlive:
    def test_http11_defaults_to_keep_alive(self):
        assert HttpRequest("GET", "/").keep_alive

    def test_http11_close_header(self):
        request = HttpRequest("GET", "/", headers={"connection": "close"})
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        request = HttpRequest("GET", "/", version="HTTP/1.0")
        assert not request.keep_alive

    def test_http10_explicit_keep_alive(self):
        request = HttpRequest("GET", "/", version="HTTP/1.0",
                              headers={"connection": "Keep-Alive"})
        assert request.keep_alive


class TestJsonBody:
    def test_empty_body_is_empty_object(self):
        assert HttpRequest("POST", "/").json() == {}

    def test_invalid_json_is_400(self):
        request = HttpRequest("POST", "/", body=b"{nope")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_non_object_is_400(self):
        request = HttpRequest("POST", "/", body=b"[1, 2]")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponseBytes:
    def test_json_body_framed_with_length(self):
        raw = response_bytes(200, {"ok": True})
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert f"Content-Length: {len(payload)}".encode() in head
        assert b"Content-Type: application/json" in head
        assert json.loads(payload) == {"ok": True}

    def test_text_body(self):
        raw = response_bytes(200, "metrics 1\n")
        assert b"Content-Type: text/plain" in raw
        assert raw.endswith(b"metrics 1\n")

    def test_empty_body_still_has_length(self):
        raw = response_bytes(204)
        assert b"Content-Length: 0" in raw
        assert b"Content-Type" not in raw

    def test_connection_header_tracks_keep_alive(self):
        assert b"Connection: keep-alive" in response_bytes(200, {})
        assert b"Connection: close" in response_bytes(
            200, {}, keep_alive=False)

    def test_extra_headers_emitted(self):
        raw = response_bytes(429, {"error": "busy"},
                             headers={"Retry-After": "7"})
        assert b"Retry-After: 7" in raw

    def test_unknown_status_gets_placeholder_reason(self):
        assert response_bytes(599).startswith(b"HTTP/1.1 599 Unknown")


class TestClientRoundTrip:
    def test_client_speaks_to_asyncio_server(self):
        async def scenario():
            seen = {}

            async def handler(reader, writer):
                request = await read_request(reader)
                seen["request"] = request
                writer.write(response_bytes(
                    200, {"echo": request.json()}, keep_alive=False))
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                status, headers, body = await http_request(
                    "127.0.0.1", port, "POST", "/count",
                    body={"script": "(assert true)"},
                    headers={"X-Tenant": "acme"})
            finally:
                server.close()
                await server.wait_closed()
            return status, headers, body, seen["request"]

        status, headers, body, request = asyncio.run(scenario())
        assert status == 200
        assert json.loads(body) == {"echo": {"script": "(assert true)"}}
        assert headers["content-length"] == str(len(body))
        assert request.headers["x-tenant"] == "acme"
        assert request.path == "/count"
