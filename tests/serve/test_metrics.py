"""The metrics registry: instruments, labels, exposition, snapshot."""

import threading

from repro.serve.metrics import (
    RESERVOIR_SIZE, Counter, Gauge, Histogram, MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_tracks_high_water(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 9
        gauge.inc(10)
        assert gauge.high_water == 12
        gauge.dec(5)
        assert gauge.value == 7
        assert gauge.high_water == 12

    def test_histogram_count_sum_mean(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.mean == 2.0

    def test_histogram_percentiles_nearest_rank(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == 51.0
        assert histogram.percentile(0.99) == 99.0
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 100.0

    def test_histogram_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0
        assert Histogram().mean == 0.0

    def test_histogram_reservoir_is_bounded(self):
        histogram = Histogram()
        for value in range(RESERVOIR_SIZE + 500):
            histogram.observe(float(value))
        # Streaming count keeps everything; the reservoir only recent.
        assert histogram.count == RESERVOIR_SIZE + 500
        assert histogram.percentile(0.0) == 500.0   # oldest 500 aged out


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        metrics = MetricsRegistry()
        first = metrics.counter("requests_total", route="/count")
        second = metrics.counter("requests_total", route="/count")
        assert first is second

    def test_labels_distinguish_series(self):
        metrics = MetricsRegistry()
        metrics.counter("requests_total", route="/count").inc()
        metrics.counter("requests_total", route="/batch").inc(2)
        assert metrics.counter("requests_total", route="/count").value == 1
        assert metrics.counter("requests_total", route="/batch").value == 2

    def test_label_order_does_not_matter(self):
        metrics = MetricsRegistry()
        first = metrics.counter("jobs_total", kind="count", status="ok")
        second = metrics.counter("jobs_total", status="ok", kind="count")
        assert first is second

    def test_render_text_exposition(self):
        metrics = MetricsRegistry(prefix="pact_serve")
        metrics.counter("requests_total", route="/count").inc(3)
        metrics.gauge("queue_depth").set(5)
        metrics.histogram("latency_seconds").observe(0.25)
        text = metrics.render_text()
        assert 'pact_serve_requests_total{route="/count"} 3' in text
        assert "pact_serve_queue_depth 5" in text
        assert "pact_serve_queue_depth_high_water 5" in text
        assert "pact_serve_latency_seconds_count 1" in text
        assert "pact_serve_latency_seconds_p50 0.250000" in text
        assert "pact_serve_latency_seconds_p99 0.250000" in text
        assert text.endswith("\n")

    def test_to_dict_snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("requests_total", route="/count").inc()
        metrics.gauge("inflight").set(4)
        metrics.histogram("latency_seconds").observe(1.0)
        snapshot = metrics.to_dict()
        assert snapshot["counters"]['requests_total{route="/count"}'] == 1
        assert snapshot["gauges"]["inflight"] == {"value": 4,
                                                  "high_water": 4}
        histogram = snapshot["histograms"]["latency_seconds"]
        assert histogram["count"] == 1
        assert histogram["p50"] == 1.0

    def test_concurrent_increments_do_not_lose_counts(self):
        metrics = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                metrics.counter("requests_total").inc()
                metrics.histogram("latency_seconds").observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("requests_total").value == 8000
        assert metrics.histogram("latency_seconds").count == 8000
