"""Admission control: ordering, watermark, tenant caps, drain."""

import asyncio

import pytest

from repro.serve.queue import AdmissionQueue, AdmissionReject, Job


def _job(job_id: str, **kwargs) -> Job:
    return Job(id=job_id, kind="count", payload={}, **kwargs)


def _run(coroutine):
    return asyncio.run(coroutine)


class TestOrdering:
    def test_priority_classes_dequeue_low_first(self):
        async def scenario():
            queue = AdmissionQueue(capacity=16)
            queue.submit(_job("batch", priority=20))
            queue.submit(_job("interactive", priority=1))
            queue.submit(_job("normal", priority=10))
            return [(await queue.get()).id for _ in range(3)]
        assert _run(scenario()) == ["interactive", "normal", "batch"]

    def test_fifo_within_a_priority_class(self):
        async def scenario():
            queue = AdmissionQueue(capacity=16)
            for n in range(5):
                queue.submit(_job(f"j{n}"))
            return [(await queue.get()).id for _ in range(5)]
        assert _run(scenario()) == [f"j{n}" for n in range(5)]

    def test_get_waits_for_a_submission(self):
        async def scenario():
            queue = AdmissionQueue(capacity=4)
            waiter = asyncio.create_task(queue.get())
            await asyncio.sleep(0.01)
            assert not waiter.done()
            queue.submit(_job("late"))
            return (await asyncio.wait_for(waiter, timeout=1)).id
        assert _run(scenario()) == "late"


class TestAdmission:
    def test_watermark_rejects_with_retry_after(self):
        async def scenario():
            queue = AdmissionQueue(capacity=8, high_watermark=2)
            queue.submit(_job("a"))
            queue.submit(_job("b"))
            with pytest.raises(AdmissionReject) as excinfo:
                queue.submit(_job("c"))
            return excinfo.value, queue
        reject, queue = _run(scenario())
        assert reject.reason == "queue_full"
        assert 1 <= reject.retry_after <= 60
        assert queue.rejects["queue_full"] == 1
        assert queue.depth == 2          # the reject never queued

    def test_watermark_clamped_to_capacity(self):
        queue = AdmissionQueue(capacity=4, high_watermark=100)
        assert queue.high_watermark == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)

    def test_tenant_limit_rejects_only_the_noisy_tenant(self):
        async def scenario():
            queue = AdmissionQueue(capacity=16, tenant_limit=2)
            queue.submit(_job("a1", tenant="acme"))
            queue.submit(_job("a2", tenant="acme"))
            with pytest.raises(AdmissionReject) as excinfo:
                queue.submit(_job("a3", tenant="acme"))
            queue.submit(_job("b1", tenant="beta"))   # other tenant fine
            return excinfo.value, queue
        reject, queue = _run(scenario())
        assert reject.reason == "tenant_limit"
        assert queue.rejects["tenant_limit"] == 1
        assert queue.inflight("acme") == 2
        assert queue.inflight("beta") == 1

    def test_release_frees_the_tenant_slot(self):
        async def scenario():
            queue = AdmissionQueue(capacity=16, tenant_limit=1)
            job = _job("a1", tenant="acme")
            queue.submit(job)
            dequeued = await queue.get()
            queue.release(dequeued)
            queue.submit(_job("a2", tenant="acme"))   # no reject now
            return queue
        queue = _run(scenario())
        assert queue.inflight("acme") == 1

    def test_tenant_slot_held_while_running(self):
        """Dequeueing does not release the slot — the cap is on jobs in
        flight (queued + running), not jobs queued."""
        async def scenario():
            queue = AdmissionQueue(capacity=16, tenant_limit=1)
            queue.submit(_job("a1", tenant="acme"))
            await queue.get()                          # now running
            with pytest.raises(AdmissionReject):
                queue.submit(_job("a2", tenant="acme"))
        _run(scenario())

    def test_drain_rejects_everything_new(self):
        async def scenario():
            queue = AdmissionQueue(capacity=16)
            queue.submit(_job("before"))
            queue.start_drain()
            with pytest.raises(AdmissionReject) as excinfo:
                queue.submit(_job("after"))
            # Already-queued work still drains.
            return excinfo.value, (await queue.get()).id
        reject, drained = _run(scenario())
        assert reject.reason == "draining"
        assert drained == "before"


class TestAccounting:
    def test_depth_high_water(self):
        async def scenario():
            queue = AdmissionQueue(capacity=16)
            for n in range(7):
                queue.submit(_job(f"j{n}"))
            for _ in range(7):
                await queue.get()
            queue.submit(_job("one-more"))
            return queue
        queue = _run(scenario())
        assert queue.depth_high_water == 7
        assert queue.depth == 1

    def test_retry_after_tracks_service_time(self):
        async def scenario():
            queue = AdmissionQueue(capacity=600, workers=1)
            for n in range(500):
                queue.submit(_job(f"j{n}"))
            return queue
        queue = _run(scenario())
        fast = queue.retry_after()
        for _ in range(20):
            queue.note_service_time(2.0)     # slow service -> longer hint
        slow = queue.retry_after()
        assert slow > fast
        assert 1 <= fast <= 60 and 1 <= slow <= 60

    def test_len_is_depth(self):
        async def scenario():
            queue = AdmissionQueue(capacity=4)
            queue.submit(_job("a"))
            return len(queue)
        assert _run(scenario()) == 1
