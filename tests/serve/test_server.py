"""CountingService end to end: real sockets, real counts, real store."""

import asyncio
import json
import time

from repro.api import Session
from repro.serve.http import http_request
from repro.serve.server import CountingService, ServeConfig

SCRIPT = """
(set-logic QF_BV)
(declare-fun x () (_ BitVec 6))
(assert (bvult x #b010100))
(set-info :projected-vars (x))
"""
# 20 models; pact:xor estimates, enum is exact.
BODY = {"script": SCRIPT, "counter": "pact:xor", "seed": 11,
        "iteration_override": 3, "timeout": 60}


def _serve(scenario, tmp_path=None, session=None, **config):
    """Run ``scenario(service)`` against a started service; always
    shut down afterwards (idempotent if the scenario already did)."""
    async def runner():
        owned = session or Session(
            cache_dir=tmp_path / "store.sqlite" if tmp_path else None)
        service = CountingService(owned, ServeConfig(port=0, **config))
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.shutdown(drain_timeout=5.0)
            if owned.cache is not None:
                owned.cache.close()
    return asyncio.run(runner())


async def _post(service, path, body, headers=None):
    status, response_headers, payload = await http_request(
        service.host, service.port, "POST", path, body=body,
        headers=headers)
    return status, response_headers, json.loads(payload)


async def _get(service, path):
    status, _, payload = await http_request(
        service.host, service.port, "GET", path)
    return status, payload


async def _await_job(service, job_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = await _get(service, f"/jobs/{job_id}")
        assert status == 200
        document = json.loads(payload)
        if document["status"] in ("done", "failed"):
            return document
        await asyncio.sleep(0.05)
    raise AssertionError(f"job {job_id} never completed")


def _slow_execute(service, seconds):
    """Stand-in count body: hold the slot, then answer ok.  Patching
    below ``_execute`` keeps the real queue-deadline check live."""
    def execute_count(job, remaining):
        time.sleep(seconds)
        return {"job": job.id, "status": "ok", "counter": "stub",
                "cached": False}
    service._execute_count = execute_count


class TestCount:
    def test_count_solves_and_repeats_from_store(self, tmp_path):
        async def scenario(service):
            status, _, first = await _post(service, "/count", BODY)
            assert status == 200
            assert first["status"] == "ok"
            assert first["counter"] == "pact:xor"
            assert first["estimate"] is not None
            assert first["cached"] is False
            status, _, second = await _post(service, "/count", BODY)
            assert status == 200
            assert second["cached"] is True
            assert second["estimate"] == first["estimate"]
            status, text = await _get(service, "/metrics")
            assert status == 200
            exposition = text.decode()
            assert "pact_serve_cache_hits_total 1" in exposition
            assert "pact_serve_cache_misses_total 1" in exposition
            assert 'pact_serve_requests_total{route="/count"} 2' in \
                exposition
        _serve(scenario, tmp_path=tmp_path)

    def test_exact_counter_over_http(self, tmp_path):
        async def scenario(service):
            status, _, document = await _post(
                service, "/count", {**BODY, "counter": "enum"})
            assert status == 200
            assert document["exact"] is True
            assert document["estimate"] == 20
        _serve(scenario, tmp_path=tmp_path)

    def test_unparseable_script_is_an_error_answer_not_a_500(self):
        async def scenario(service):
            status, _, document = await _post(
                service, "/count", {**BODY, "script": "(not smtlib"})
            assert status == 200
            assert document["status"] == "error"
            assert document["detail"]
        _serve(scenario)

    def test_async_mode_polls_to_completion(self, tmp_path):
        async def scenario(service):
            status, _, accepted = await _post(
                service, "/count", {**BODY, "mode": "async"})
            assert status == 202
            assert accepted["job"].startswith("j")
            document = await _await_job(service, accepted["job"])
            assert document["status"] == "done"
            assert document["result"]["estimate"] is not None
            status, _ = await _get(service, "/jobs/nonesuch")
            assert status == 404
        _serve(scenario, tmp_path=tmp_path)


class TestBatchAndPortfolio:
    def test_batch_answers_in_input_order(self, tmp_path):
        async def scenario(service):
            problems = [{"script": SCRIPT, "name": "alpha"},
                        {"script": SCRIPT.replace("#b010100", "#b000111"),
                         "name": "beta"}]
            status, _, document = await _post(
                service, "/batch", {**BODY, "problems": problems})
            assert status == 200
            assert document["solved"] == 2
            assert [entry["problem"] for entry in document["entries"]] \
                == ["alpha", "beta"]
        _serve(scenario, tmp_path=tmp_path)

    def test_portfolio_names_a_winner(self, tmp_path):
        async def scenario(service):
            status, _, document = await _post(
                service, "/portfolio",
                {**BODY, "counters": ["enum", "pact:xor"]})
            assert status == 200
            assert document["status"] == "ok"
            assert document["winner"] in ("enum", "pact:xor")
            assert document["estimate"] is not None
        _serve(scenario, tmp_path=tmp_path)


class TestRoutingAndValidation:
    def test_healthz_and_unknown_routes(self):
        async def scenario(service):
            status, payload = await _get(service, "/healthz")
            assert status == 200
            document = json.loads(payload)
            assert document["status"] == "ok"
            assert document["queue_depth"] == 0
            status, _ = await _get(service, "/nonesuch")
            assert status == 404
        _serve(scenario)

    def test_validation_answers_400(self):
        async def scenario(service):
            status, _, document = await _post(service, "/count", {})
            assert status == 400
            assert "script" in document["error"]
            status, _, document = await _post(
                service, "/batch", {"problems": []})
            assert status == 400
            status, _, document = await _post(
                service, "/count", {**BODY, "timeout": -1})
            assert status == 400
            status, _, payload = await http_request(
                service.host, service.port, "POST", "/count",
                body=b"{torn", headers={"Content-Type":
                                        "application/json"})
            assert status == 400
        _serve(scenario)

    def test_keep_alive_connection_reused(self, tmp_path):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                service.host, service.port)
            try:
                for _ in range(2):
                    status, _, payload = await http_request(
                        service.host, service.port, "POST", "/count",
                        body=BODY, reader_writer=(reader, writer))
                    assert status == 200
                    assert json.loads(payload)["status"] == "ok"
            finally:
                writer.close()
                await writer.wait_closed()
        _serve(scenario, tmp_path=tmp_path)


class TestBackPressure:
    def test_queue_watermark_answers_429_with_retry_after(self):
        async def scenario(service):
            _slow_execute(service, 0.4)
            codes, retry_after = [], None
            for _ in range(3):
                status, headers, document = await _post(
                    service, "/count", {**BODY, "mode": "async"})
                codes.append(status)
                if status == 429:
                    retry_after = headers.get("retry-after")
                    assert document["error"].endswith("queue_full")
                else:
                    await asyncio.sleep(0.1)   # let the worker dequeue
            assert codes == [202, 202, 429]
            assert retry_after is not None and int(retry_after) >= 1
            status, text = await _get(service, "/metrics")
            assert ('pact_serve_admission_rejects_total'
                    '{reason="queue_full"} 1') in text.decode()
        _serve(scenario, workers=1, queue_depth=8, high_watermark=1)

    def test_tenant_limit_isolates_noisy_tenant(self):
        async def scenario(service):
            _slow_execute(service, 0.4)
            async def submit(tenant):
                return await _post(service, "/count",
                                   {**BODY, "mode": "async"},
                                   headers={"X-Tenant": tenant})
            status, _, _ = await submit("acme")
            assert status == 202
            status, _, document = await submit("acme")
            assert status == 429
            assert document["error"].endswith("tenant_limit")
            status, _, _ = await submit("beta")   # others unaffected
            assert status == 202
        _serve(scenario, workers=2, queue_depth=8, tenant_limit=1)

    def test_deadline_spent_in_queue_answers_timeout(self):
        async def scenario(service):
            _slow_execute(service, 0.4)
            status, _, _ = await _post(service, "/count",
                                       {**BODY, "mode": "async"})
            assert status == 202
            await asyncio.sleep(0.05)          # worker is now blocked
            status, _, accepted = await _post(
                service, "/count",
                {**BODY, "mode": "async", "timeout": 0.05})
            assert status == 202
            document = await _await_job(service, accepted["job"])
            assert document["result"]["status"] == "timeout"
            assert "queue" in document["result"]["detail"]
        _serve(scenario, workers=1, queue_depth=8)


class TestDrainAndShutdown:
    def test_draining_rejects_and_unhealthies(self):
        async def scenario(service):
            service.draining = True
            service.queue.start_drain()
            status, payload = await _get(service, "/healthz")
            assert status == 503
            assert json.loads(payload)["status"] == "draining"
            status, headers, document = await _post(service, "/count",
                                                    BODY)
            assert status == 503
            assert document["error"].endswith("draining")
            assert "retry-after" in headers
        _serve(scenario)

    def test_shutdown_answers_every_admitted_job(self):
        async def scenario(service):
            def blocked(job):
                service._cancel.wait(timeout=30.0)
                return {"job": job.id, "status": "timeout",
                        "detail": "cancelled by drain"}
            service._execute = blocked
            status, _, accepted = await _post(
                service, "/count", {**BODY, "mode": "async"})
            assert status == 202
            await asyncio.sleep(0.1)
            started = time.monotonic()
            summary = await service.shutdown(drain_timeout=0.2)
            assert time.monotonic() - started < 10.0
            job = service._completed[accepted["job"]]
            assert job.future.done()
            assert job.result["status"] == "timeout"
            assert isinstance(summary, dict)
            assert "counters" in summary and "histograms" in summary
        _serve(scenario, workers=1)

    def test_clean_shutdown_summary_counts_the_traffic(self, tmp_path):
        async def scenario(service):
            await _post(service, "/count", BODY)
            await _post(service, "/count", BODY)
            summary = await service.shutdown()
            jobs = sum(value for key, value
                       in summary["counters"].items()
                       if key.startswith("jobs_total"))
            assert jobs == 2
            assert summary["counters"]["cache_hits_total"] == 1
            latency = next(value for key, value
                           in summary["histograms"].items()
                           if key.startswith("latency_seconds"))
            assert latency["count"] == 2
            assert latency["p99"] >= latency["p50"] >= 0.0
        _serve(scenario, tmp_path=tmp_path)
