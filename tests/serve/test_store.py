"""SqliteStore: the ResultStore contract, multi-process safety, and the
differential harness against the JSON cache — same keys, same payloads,
same CountResponse from either backend."""

import json
import sqlite3
import threading

from repro.api import CountRequest, Problem, Session
from repro.engine.cache import ResultCache, ResultStore
from repro.serve.store import SqliteStore, open_store
from repro.smt.terms import bv_ult, bv_val, bv_var

PAYLOAD = {"estimate": 20, "status": "ok", "exact": False,
           "time_seconds": 0.01, "solver_calls": 3, "saved_at": 100.0}


def _problem(name, width=8, bound=200):
    x = bv_var(name, width)
    return Problem.from_terms([bv_ult(x, bv_val(bound, width))], [x],
                              name=name)


def _request(**overrides):
    defaults = dict(counter="pact:xor", seed=11, iteration_override=3)
    defaults.update(overrides)
    return CountRequest(**defaults)


class TestResultStoreContract:
    def test_round_trip_and_accounting(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite")
        assert store.get("fp1") is None
        store.put("fp1", PAYLOAD)
        entry = store.get("fp1")
        assert entry["estimate"] == 20
        assert entry["status"] == "ok"
        assert store.stats["hits"] == 1
        assert store.stats["misses"] == 1
        assert len(store) == 1
        store.close()

    def test_rows_durable_without_flush(self, tmp_path):
        path = tmp_path / "store.sqlite"
        first = SqliteStore(path)
        first.put("fp1", PAYLOAD)     # no flush, no close
        second = SqliteStore(path)
        assert second.get("fp1")["estimate"] == 20
        first.close()
        second.close()

    def test_merge_on_write_preserves_first_saved_at(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite")
        store.put("fp1", dict(PAYLOAD))
        row = store._conn.execute(
            "SELECT saved_at FROM entries WHERE fingerprint='fp1'"
        ).fetchone()
        assert row[0] == 100.0
        store.put("fp1", {"estimate": 21, "status": "ok",
                          "saved_at": 999.0})
        row = store._conn.execute(
            "SELECT saved_at, payload FROM entries"
            " WHERE fingerprint='fp1'").fetchone()
        assert row[0] == 100.0                      # first write's stamp
        assert json.loads(row[1])["estimate"] == 21  # newest payload wins
        store.close()

    def test_lru_eviction_at_flush(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite", max_entries=2)
        for n in range(4):
            store.put(f"fp{n}", dict(PAYLOAD, saved_at=float(n),
                                     used_at=float(n)))
        store.flush()
        assert len(store) == 2
        assert store.evictions == 2
        assert store.get("fp0") is None       # oldest went first
        assert store.get("fp3") is not None
        store.close()

    def test_hit_refreshes_recency_only_when_bounded(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite", max_entries=2)
        for n in range(2):
            store.put(f"fp{n}", dict(PAYLOAD, used_at=float(n)))
        assert store.get("fp0") is not None   # refresh fp0's recency
        store.put("fp2", PAYLOAD)
        store.flush()
        assert store.get("fp0") is not None   # survived: recently hit
        assert store.get("fp1") is None       # evicted instead
        store.close()

    def test_corrupt_row_reads_as_miss(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = SqliteStore(path)
        connection = sqlite3.connect(path)
        connection.execute(
            "INSERT INTO entries VALUES ('bad', '{torn', 1.0, 1.0)")
        connection.commit()
        connection.close()
        assert store.get("bad") is None
        assert store.misses == 1
        store.close()

    def test_context_manager_closes(self, tmp_path):
        with SqliteStore(tmp_path / "store.sqlite") as store:
            store.put("fp1", PAYLOAD)
        # The connection is gone; a fresh store still sees the row.
        with SqliteStore(tmp_path / "store.sqlite") as fresh:
            assert fresh.get("fp1") is not None


class TestArtifacts:
    def test_round_trip_and_modes(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite")
        assert not store.has_artifact("d1")
        store.put_artifact("d1", {"cnf": [1, 2]}, simplified=True)
        store.put_artifact("d1", {"cnf": [3]}, simplified=False)
        assert store.has_artifact("d1", simplified=True)
        assert store.get_artifact("d1", simplified=True) == {"cnf": [1, 2]}
        assert store.get_artifact("d1", simplified=False) == {"cnf": [3]}
        assert store.artifact_hits == 2
        assert store.get_artifact("missing") is None
        assert store.artifact_misses == 1
        store.close()

    def test_lru_trim_at_put(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite", max_artifacts=2)
        for n in range(4):
            store.put_artifact(f"d{n}", {"n": n})
        assert store.artifact_evictions == 2
        assert not store.has_artifact("d0")
        assert store.has_artifact("d3")
        store.close()


class TestOpenStore:
    def test_sqlite_suffixes_open_sqlite(self, tmp_path):
        for name in ("a.sqlite", "b.sqlite3", "c.db"):
            store = open_store(tmp_path / name)
            assert isinstance(store, SqliteStore)
            store.close()

    def test_sqlite_prefix_opens_sqlite(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path / 'plain-name'}")
        assert isinstance(store, SqliteStore)
        store.close()

    def test_directory_opens_json_cache(self, tmp_path):
        store = open_store(tmp_path / "cachedir")
        assert isinstance(store, ResultCache)
        assert isinstance(store, ResultStore)


class TestConcurrency:
    def test_two_instances_share_one_file(self, tmp_path):
        """Two connections (stand-ins for two processes) on the same
        database: every row written by either is visible to both."""
        path = tmp_path / "store.sqlite"
        first, second = SqliteStore(path), SqliteStore(path)
        first.put("fp-a", PAYLOAD)
        second.put("fp-b", PAYLOAD)
        assert second.get("fp-a") is not None
        assert first.get("fp-b") is not None
        assert len(first) == len(second) == 2
        first.close()
        second.close()

    def test_threaded_writers_lose_nothing(self, tmp_path):
        store = SqliteStore(tmp_path / "store.sqlite")
        errors = []

        def writer(base):
            try:
                for n in range(25):
                    store.put(f"fp-{base}-{n}", PAYLOAD)
                    store.get(f"fp-{base}-{n}")
                    store.put_artifact(f"d-{base}-{n}", {"n": n})
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store) == 150
        assert store.hits == 150
        store.close()


class TestDifferential:
    """The ISSUE's acceptance bar: the sqlite store round-trips the same
    fingerprint/artifact keys as the JSON cache — a session can switch
    backends and serve the identical CountResponse."""

    def test_payload_round_trip_is_identical(self, tmp_path):
        json_store = ResultCache(tmp_path / "jsoncache")
        sqlite_store = SqliteStore(tmp_path / "store.sqlite")
        json_store.put("fp1", dict(PAYLOAD))
        sqlite_store.put("fp1", dict(PAYLOAD))
        from_json = json_store.get("fp1")
        from_sqlite = sqlite_store.get("fp1")
        from_json.pop("used_at")      # recency stamps are wall-clock
        from_sqlite.pop("used_at")
        assert from_json == from_sqlite
        json_store.flush()
        sqlite_store.close()

    def test_artifact_round_trip_is_identical(self, tmp_path):
        payload = {"digest": "d1", "cnf": [[1, -2], [2]], "vars": 2}
        json_store = ResultCache(tmp_path / "jsoncache")
        sqlite_store = SqliteStore(tmp_path / "store.sqlite")
        json_store.put_artifact("d1", payload)
        sqlite_store.put_artifact("d1", payload)
        assert (json_store.get_artifact("d1")
                == sqlite_store.get_artifact("d1") == payload)
        sqlite_store.close()

    def test_json_written_entries_hit_through_sqlite(self, tmp_path):
        """Counting with the JSON cache, copying the rows into sqlite,
        then counting against sqlite must be a cache hit with the same
        response — the fingerprint keys are backend-independent."""
        problem = _problem("store_diff")
        request = _request()
        with Session(cache_dir=tmp_path / "jsoncache") as session:
            solved = session.count(problem, request)
        json_store = ResultCache(tmp_path / "jsoncache")
        sqlite_store = SqliteStore(tmp_path / "store.sqlite")
        key = problem.fingerprint(request.cache_params("pact:xor"))
        entry = json_store.get(key)
        assert entry is not None
        sqlite_store.put(key, entry)

        with Session(cache=sqlite_store) as session:
            replayed = session.count(problem, request)
        assert replayed.cached
        assert replayed.estimate == solved.estimate
        assert replayed.status is solved.status
        assert replayed.exact == solved.exact
        sqlite_store.close()

    def test_same_response_counting_against_either_backend(self, tmp_path):
        problem = _problem("store_same")
        request = _request()
        with Session(cache_dir=tmp_path / "jsoncache") as session:
            via_json = session.count(problem, request)
        with Session(cache_dir=tmp_path / "store.sqlite") as session:
            via_sqlite = session.count(problem, request)
            repeat = session.count(problem, request)
        assert via_json.estimate == via_sqlite.estimate
        assert via_json.estimates == via_sqlite.estimates
        assert repeat.cached
        assert repeat.estimate == via_json.estimate
