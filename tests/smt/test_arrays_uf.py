"""Array and UF elimination tests."""

import itertools
import random

import pytest

from repro.errors import UnsupportedFeatureError
from repro.smt import (
    And, BitVecSort, BoolSort, Equals, Ite, Not, SmtSolver, apply_uf,
    array_var, bool_var, bv_add, bv_ult, bv_val, bv_var, select, store, uf,
)
from repro.smt.evaluator import evaluate
from repro.smt.semantics import ArrayValue, FunctionValue


class TestArrays:
    def test_read_over_write_same_index(self):
        a = array_var("row_a", BitVecSort(4), BitVecSort(8))
        i = bv_var("row_i", 4)
        solver = SmtSolver()
        solver.assert_term(
            Equals(select(store(a, i, bv_val(42, 8)), i), bv_val(42, 8)))
        assert solver.check() is True
        solver2 = SmtSolver()
        solver2.assert_term(Not(
            Equals(select(store(a, i, bv_val(42, 8)), i), bv_val(42, 8))))
        assert solver2.check() is False

    def test_read_over_write_distinct_index(self):
        a = array_var("rw_a", BitVecSort(4), BitVecSort(8))
        i, j = bv_var("rw_i", 4), bv_var("rw_j", 4)
        solver = SmtSolver()
        solver.assert_term(Not(Equals(i, j)))
        solver.assert_term(Equals(select(a, j), bv_val(1, 8)))
        solver.assert_term(
            Equals(select(store(a, i, bv_val(9, 8)), j), bv_val(2, 8)))
        assert solver.check() is False  # store at i cannot change index j

    def test_select_congruence(self):
        a = array_var("cong_a", BitVecSort(4), BitVecSort(8))
        i, j = bv_var("cong_i", 4), bv_var("cong_j", 4)
        solver = SmtSolver()
        solver.assert_term(Equals(i, j))
        solver.assert_term(Equals(select(a, i), bv_val(1, 8)))
        solver.assert_term(Equals(select(a, j), bv_val(2, 8)))
        assert solver.check() is False

    def test_congruence_across_assertions_incremental(self):
        """Selects asserted in different frames still congruent."""
        a = array_var("inc_a", BitVecSort(4), BitVecSort(8))
        i, j = bv_var("inc_i", 4), bv_var("inc_j", 4)
        solver = SmtSolver()
        solver.assert_term(Equals(select(a, i), bv_val(1, 8)))
        solver.push()
        solver.assert_term(Equals(select(a, j), bv_val(2, 8)))
        solver.assert_term(Equals(i, j))
        assert solver.check() is False
        solver.pop()
        solver.assert_term(Equals(i, j))
        assert solver.check() is True  # the conflicting select is gone

    def test_nested_stores(self):
        a = array_var("nest_a", BitVecSort(3), BitVecSort(4))
        stored = store(store(a, bv_val(1, 3), bv_val(5, 4)),
                       bv_val(2, 3), bv_val(6, 4))
        solver = SmtSolver()
        solver.assert_term(Equals(select(stored, bv_val(1, 3)),
                                  bv_val(5, 4)))
        solver.assert_term(Equals(select(stored, bv_val(2, 3)),
                                  bv_val(6, 4)))
        assert solver.check() is True

    def test_store_shadowing(self):
        a = array_var("shadow_a", BitVecSort(3), BitVecSort(4))
        i = bv_val(1, 3)
        stored = store(store(a, i, bv_val(5, 4)), i, bv_val(7, 4))
        solver = SmtSolver()
        solver.assert_term(Equals(select(stored, i), bv_val(5, 4)))
        assert solver.check() is False  # later store wins

    def test_array_ite(self):
        a = array_var("ite_a", BitVecSort(3), BitVecSort(4))
        b = array_var("ite_b", BitVecSort(3), BitVecSort(4))
        cond = bool_var("ite_cond")
        i = bv_val(0, 3)
        solver = SmtSolver()
        solver.assert_term(Equals(select(a, i), bv_val(1, 4)))
        solver.assert_term(Equals(select(b, i), bv_val(2, 4)))
        solver.assert_term(Equals(select(Ite(cond, a, b), i), bv_val(2, 4)))
        assert solver.check() is True
        assert solver.model().value(cond) is False

    def test_array_equality_unsupported(self):
        a = array_var("eq_a", BitVecSort(3), BitVecSort(4))
        b = array_var("eq_b", BitVecSort(3), BitVecSort(4))
        solver = SmtSolver()
        with pytest.raises(UnsupportedFeatureError):
            solver.assert_term(Equals(a, b))

    def test_model_reconstruction_validates(self):
        a = array_var("mod_a", BitVecSort(4), BitVecSort(8))
        i, j = bv_var("mod_i", 4), bv_var("mod_j", 4)
        assertion = And(
            Equals(select(a, i), bv_add(select(a, j), bv_val(1, 8))),
            Not(Equals(i, j)),
            bv_ult(bv_val(3, 8), select(a, i)),
        )
        solver = SmtSolver()
        solver.assert_term(assertion)
        assert solver.check() is True
        model = solver.model()
        assert model.value(assertion) is True
        array_value = model.value(a)
        assert isinstance(array_value, ArrayValue)


class TestUf:
    def test_congruence(self):
        f = uf("tc_f", [BitVecSort(4)], BitVecSort(4))
        x, y = bv_var("tc_x", 4), bv_var("tc_y", 4)
        solver = SmtSolver()
        solver.assert_term(Equals(x, y))
        solver.assert_term(
            Not(Equals(apply_uf(f, x), apply_uf(f, y))))
        assert solver.check() is False

    def test_different_args_may_differ(self):
        f = uf("dd_f", [BitVecSort(4)], BitVecSort(4))
        x, y = bv_var("dd_x", 4), bv_var("dd_y", 4)
        solver = SmtSolver()
        solver.assert_term(Not(Equals(x, y)))
        solver.assert_term(Not(Equals(apply_uf(f, x), apply_uf(f, y))))
        assert solver.check() is True

    def test_multi_argument_congruence(self):
        g = uf("ma_g", [BitVecSort(3), BitVecSort(3)], BoolSort())
        x, y = bv_var("ma_x", 3), bv_var("ma_y", 3)
        solver = SmtSolver()
        solver.assert_term(Equals(x, bv_val(1, 3)))
        solver.assert_term(Equals(y, bv_val(1, 3)))
        solver.assert_term(apply_uf(g, x, y))
        solver.assert_term(Not(apply_uf(g, bv_val(1, 3), bv_val(1, 3))))
        assert solver.check() is False

    def test_function_composition(self):
        f = uf("fc_f", [BitVecSort(4)], BitVecSort(4))
        x = bv_var("fc_x", 4)
        solver = SmtSolver()
        # f(f(x)) = x, f(x) != x is satisfiable (an involution)
        solver.assert_term(Equals(apply_uf(f, apply_uf(f, x)), x))
        solver.assert_term(Not(Equals(apply_uf(f, x), x)))
        assert solver.check() is True
        model = solver.model()
        function_value = model.value(f)
        assert isinstance(function_value, FunctionValue)
        x_value = model.value(x)
        fx = function_value.apply((x_value,))
        assert fx != x_value
        assert function_value.apply((fx,)) == x_value

    def test_uf_model_validates_assertions(self):
        f = uf("mv_f", [BitVecSort(3)], BitVecSort(3))
        x = bv_var("mv_x", 3)
        assertion = And(
            bv_ult(apply_uf(f, x), bv_val(5, 3)),
            Equals(apply_uf(f, bv_val(0, 3)), bv_val(4, 3)),
        )
        solver = SmtSolver()
        solver.assert_term(assertion)
        assert solver.check() is True
        assert solver.model().value(assertion) is True

    def test_uf_over_bool_codomain(self):
        p = uf("bc_p", [BitVecSort(2)], BoolSort())
        solver = SmtSolver()
        solver.assert_term(apply_uf(p, bv_val(0, 2)))
        solver.assert_term(Not(apply_uf(p, bv_val(1, 2))))
        assert solver.check() is True
        model = solver.model()
        table = model.value(p)
        assert table.apply((0,)) is True
        assert table.apply((1,)) is False


class TestBruteForceCross:
    """Small array formulas: solver verdict matches brute-force."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_array_formulas(self, seed):
        rng = random.Random(seed)
        index_width, element_width = 2, 2
        a = array_var(f"bf_a{seed}", BitVecSort(index_width),
                      BitVecSort(element_width))
        i = bv_var(f"bf_i{seed}", index_width)

        constraints = []
        for _ in range(rng.randint(1, 3)):
            idx = (i if rng.random() < 0.5
                   else bv_val(rng.randrange(4), index_width))
            value = bv_val(rng.randrange(4), element_width)
            if rng.random() < 0.5:
                constraints.append(Equals(select(a, idx), value))
            else:
                constraints.append(Not(Equals(select(a, idx), value)))
        formula = And(*constraints)

        solver = SmtSolver()
        solver.assert_term(formula)
        got = solver.check()

        expected = False
        for table in itertools.product(range(4), repeat=4):
            array_value = ArrayValue(dict(enumerate(table)))
            for i_value in range(4):
                assignment = {a: array_value, i: i_value}
                if evaluate(formula, assignment):
                    expected = True
                    break
            if expected:
                break
        assert got == expected
