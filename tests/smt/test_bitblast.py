"""Bit-blaster correctness: every BV operator vs the reference semantics.

The pattern: build op(x, y), constrain x and y to constants via the SMT
solver, solve (pure propagation) and compare the result bits with
evaluate().  This validates the entire path terms -> CNF -> model.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    And, Equals, Iff, Ite, Not, SmtSolver, bool_var, bv_add, bv_and,
    bv_ashr, bv_concat, bv_extract, bv_lshr, bv_mul, bv_neg, bv_not, bv_or,
    bv_sdiv, bv_shl, bv_sign_extend, bv_sle, bv_slt, bv_srem, bv_sub,
    bv_udiv, bv_ule, bv_ult, bv_urem, bv_val, bv_var, bv_xor,
    bv_zero_extend, Distinct,
)
from repro.smt.evaluator import evaluate

BINARY_OPS = {
    "add": bv_add, "sub": bv_sub, "mul": bv_mul, "udiv": bv_udiv,
    "urem": bv_urem, "sdiv": bv_sdiv, "srem": bv_srem, "and": bv_and,
    "or": bv_or, "xor": bv_xor, "shl": bv_shl, "lshr": bv_lshr,
    "ashr": bv_ashr,
}
PRED_OPS = {"ult": bv_ult, "ule": bv_ule, "slt": bv_slt, "sle": bv_sle}


def solve_for(term, bindings):
    """Assert var = const bindings and return term's model value."""
    solver = SmtSolver()
    for var, value in bindings.items():
        solver.assert_term(Equals(var, bv_val(value, var.sort.width)))
    if term.sort.is_bool():
        result_var = bool_var("__result")
        solver.assert_term(Iff(result_var, term))
        assert solver.check() is True
        return solver.model().value(result_var)
    result_var = bv_var("__result", term.sort.width)
    solver.assert_term(Equals(result_var, term))
    assert solver.check() is True
    return solver.bv_value(result_var)


@pytest.mark.parametrize("op_name", sorted(BINARY_OPS))
def test_binary_ops_match_semantics(op_name):
    op = BINARY_OPS[op_name]
    rng = random.Random(hash(op_name) & 0xFFFF)
    x, y = bv_var(f"x_{op_name}", 5), bv_var(f"y_{op_name}", 5)
    term = op(x, y)
    cases = [(rng.randrange(32), rng.randrange(32)) for _ in range(8)]
    cases += [(0, 0), (31, 31), (0, 31), (16, 1), (5, 0)]
    for a, b in cases:
        got = solve_for(term, {x: a, y: b})
        expected = evaluate(term, {x: a, y: b})
        assert got == expected, f"{op_name}({a}, {b}) = {got} != {expected}"


@pytest.mark.parametrize("op_name", sorted(PRED_OPS))
def test_predicates_match_semantics(op_name):
    op = PRED_OPS[op_name]
    x, y = bv_var(f"px_{op_name}", 4), bv_var(f"py_{op_name}", 4)
    term = op(x, y)
    for a in range(0, 16, 3):
        for b in range(0, 16, 3):
            got = solve_for(term, {x: a, y: b})
            assert got == evaluate(term, {x: a, y: b}), (op_name, a, b)


def test_unary_and_structure_ops():
    x = bv_var("sx", 6)
    for a in (0, 1, 31, 63, 32):
        for term in (bv_not(x), bv_neg(x), bv_extract(x, 4, 1),
                     bv_zero_extend(x, 3), bv_sign_extend(x, 3)):
            got = solve_for(term, {x: a})
            assert got == evaluate(term, {x: a}), (term.op, a)


def test_concat():
    x, y = bv_var("cx", 3), bv_var("cy", 5)
    term = bv_concat(x, y)
    for a, b in [(0, 0), (7, 31), (5, 9), (1, 16)]:
        got = solve_for(term, {x: a, y: b})
        assert got == evaluate(term, {x: a, y: b})


def test_ite_over_bv():
    x, y = bv_var("ix", 4), bv_var("iy", 4)
    term = Ite(bv_ult(x, y), bv_add(x, y), bv_sub(x, y))
    for a, b in [(2, 9), (9, 2), (5, 5)]:
        got = solve_for(term, {x: a, y: b})
        assert got == evaluate(term, {x: a, y: b})


def test_distinct():
    xs = [bv_var(f"dx{i}", 3) for i in range(3)]
    term = Distinct(*xs)
    got = solve_for(term, {xs[0]: 1, xs[1]: 2, xs[2]: 3})
    assert got is True
    got = solve_for(term, {xs[0]: 1, xs[1]: 2, xs[2]: 1})
    assert got is False


@given(st.integers(0, 2 ** 16 - 1), st.integers(0, 2 ** 16 - 1))
@settings(max_examples=15, deadline=None)
def test_wide_multiplication(a, b):
    x, y = bv_var("wx", 16), bv_var("wy", 16)
    term = bv_mul(x, y)
    assert solve_for(term, {x: a, y: b}) == (a * b) & 0xFFFF


@pytest.mark.parametrize("seed", range(10))
def test_random_nested_terms(seed):
    """Deeply nested random expressions: solver value == evaluator value."""
    rng = random.Random(3000 + seed)
    variables = [bv_var(f"n{seed}_{i}", 4) for i in range(3)]
    assignment = {v: rng.randrange(16) for v in variables}
    ops = list(BINARY_OPS.values())

    def build(depth):
        if depth == 0 or rng.random() < 0.25:
            if rng.random() < 0.6:
                return rng.choice(variables)
            return bv_val(rng.randrange(16), 4)
        return rng.choice(ops)(build(depth - 1), build(depth - 1))

    term = build(4)
    assert solve_for(term, assignment) == evaluate(term, assignment)


def test_unsat_from_contradictory_bv_facts():
    solver = SmtSolver()
    x = bv_var("ux", 8)
    solver.assert_term(bv_ult(x, bv_val(10, 8)))
    solver.assert_term(bv_ult(bv_val(20, 8), x))
    assert solver.check() is False


def test_overflow_wraps():
    solver = SmtSolver()
    x = bv_var("ox", 8)
    solver.assert_term(Equals(bv_add(x, bv_val(1, 8)), bv_val(0, 8)))
    assert solver.check() is True
    assert solver.bv_value(x) == 255
