"""FP->BV encoding vs the softfloat reference, through the full solver."""

import random

import pytest

from repro.errors import UnsupportedFeatureError
from repro.smt import (
    And, Equals, Iff, Not, SmtSolver, bool_var, bv_val, bv_var, fp_abs,
    fp_add, fp_eq, fp_from_bv, fp_is_inf, fp_is_nan, fp_is_negative,
    fp_is_normal, fp_is_positive, fp_is_subnormal, fp_is_zero, fp_leq,
    fp_lt, fp_max, fp_min, fp_mul, fp_neg, fp_sub, fp_to_bv, fp_var,
)
from repro.smt.theories.fp.softfloat import FpFormat, SoftFloat


class FpHarness:
    """Pin FP variable bit patterns per case via push/pop frames."""

    def __init__(self, eb, sb, expressions):
        self.sf = SoftFloat(FpFormat(eb, sb))
        self.width = self.sf.fmt.total_width
        tag = f"{eb}_{sb}_{id(self)}"
        self.a = fp_var(f"ha{tag}", eb, sb)
        self.b = fp_var(f"hb{tag}", eb, sb)
        self.solver = SmtSolver()
        self.pa = bv_var(f"hpa{tag}", self.width)
        self.pb = bv_var(f"hpb{tag}", self.width)
        self.solver.assert_term(Equals(fp_to_bv(self.a), self.pa))
        self.solver.assert_term(Equals(fp_to_bv(self.b), self.pb))
        self.outputs = {}
        for name, build in expressions.items():
            expression = build(self.a, self.b)
            if expression.sort.is_bool():
                out = bool_var(f"hout_{name}{tag}")
                self.solver.assert_term(Iff(out, expression))
            else:
                out = bv_var(f"hout_{name}{tag}", self.width)
                self.solver.assert_term(Equals(fp_to_bv(expression), out))
            self.outputs[name] = out

    def run(self, va, vb):
        self.solver.push()
        self.solver.assert_term(Equals(self.pa, bv_val(va, self.width)))
        self.solver.assert_term(Equals(self.pb, bv_val(vb, self.width)))
        assert self.solver.check() is True
        model = self.solver.model()
        results = {name: model.value(out)
                   for name, out in self.outputs.items()}
        self.solver.pop()
        return results


def interesting_patterns(sf):
    """Edge-case bit patterns: zeros, infs, NaN, subnormals, boundaries."""
    fmt = sf.fmt
    return [
        sf.zero(0), sf.zero(1), sf.inf(0), sf.inf(1), sf.nan(),
        1,                                # smallest subnormal
        (1 << (fmt.sb - 1)) - 1,          # largest subnormal
        sf.pack(0, 1, 0),                 # smallest normal
        sf.max_normal(0), sf.max_normal(1),
        sf.pack(0, fmt.bias, 0),          # 1.0
        sf.pack(1, fmt.bias, 0),          # -1.0
    ]


@pytest.mark.parametrize("eb,sb", [(3, 3), (3, 4), (4, 4)])
def test_arithmetic_matches_softfloat(eb, sb):
    harness = FpHarness(eb, sb, {
        "add": fp_add, "sub": fp_sub, "mul": fp_mul,
        "min": fp_min, "max": fp_max,
    })
    sf = harness.sf
    rng = random.Random(eb * 31 + sb)
    cases = [(a, b) for a in interesting_patterns(sf)
             for b in interesting_patterns(sf)[:4]]
    cases += [(rng.randrange(1 << harness.width),
               rng.randrange(1 << harness.width)) for _ in range(40)]
    reference = {"add": sf.add, "sub": sf.sub, "mul": sf.mul,
                 "min": sf.min_, "max": sf.max_}
    for va, vb in cases:
        results = harness.run(va, vb)
        for name, got in results.items():
            expected = reference[name](va, vb)
            if sf.is_nan(expected) and sf.is_nan(got):
                continue
            assert got == expected, (name, va, vb, got, expected)


@pytest.mark.parametrize("eb,sb", [(3, 3), (4, 4)])
def test_comparisons_match_softfloat(eb, sb):
    harness = FpHarness(eb, sb, {
        "eq": fp_eq, "lt": fp_lt, "leq": fp_leq,
    })
    sf = harness.sf
    rng = random.Random(eb * 7 + sb)
    cases = [(a, b) for a in interesting_patterns(sf)
             for b in interesting_patterns(sf)[:5]]
    cases += [(rng.randrange(1 << harness.width),
               rng.randrange(1 << harness.width)) for _ in range(30)]
    for va, vb in cases:
        results = harness.run(va, vb)
        assert results["eq"] == sf.eq(va, vb), (va, vb)
        assert results["lt"] == sf.lt(va, vb), (va, vb)
        assert results["leq"] == sf.leq(va, vb), (va, vb)


def test_classification_predicates():
    harness = FpHarness(3, 4, {
        "nan": lambda a, b: fp_is_nan(a),
        "inf": lambda a, b: fp_is_inf(a),
        "zero": lambda a, b: fp_is_zero(a),
        "normal": lambda a, b: fp_is_normal(a),
        "subnormal": lambda a, b: fp_is_subnormal(a),
        "neg": lambda a, b: fp_is_negative(a),
        "pos": lambda a, b: fp_is_positive(a),
    })
    sf = harness.sf
    for va in range(1 << harness.width):  # exhaustive: 128 patterns
        results = harness.run(va, 0)
        assert results["nan"] == sf.is_nan(va), va
        assert results["inf"] == sf.is_inf(va), va
        assert results["zero"] == sf.is_zero(va), va
        assert results["normal"] == sf.is_normal(va), va
        assert results["subnormal"] == sf.is_subnormal(va), va
        assert results["neg"] == sf.is_negative(va), va
        assert results["pos"] == sf.is_positive(va), va


def test_abs_neg():
    harness = FpHarness(3, 3, {
        "abs": lambda a, b: fp_abs(a),
        "neg": lambda a, b: fp_neg(a),
    })
    sf = harness.sf
    for va in range(64):
        results = harness.run(va, 0)
        assert results["abs"] == sf.abs_(va)
        assert results["neg"] == sf.neg(va)


def test_fp_solving_backwards():
    """Solve for an *input* given the output — only possible with a real
    bit-level encoding (no evaluation shortcut)."""
    eb, sb = 3, 4
    sf = SoftFloat(FpFormat(eb, sb))
    x = fp_var("bw_x", eb, sb)
    two = fp_from_bv(bv_val(sf.from_fraction(2), sf.fmt.total_width), eb, sb)
    eight = fp_from_bv(bv_val(sf.from_fraction(8), sf.fmt.total_width),
                       eb, sb)
    solver = SmtSolver()
    solver.assert_term(fp_eq(fp_mul(x, two), eight))
    assert solver.check() is True
    model = solver.model()
    assert sf.to_fraction(model.value(x)) == 4

    solver.push()
    solver.assert_term(Not(fp_eq(x, fp_from_bv(
        bv_val(sf.from_fraction(4), sf.fmt.total_width), eb, sb))))
    assert solver.check() is False  # 4 is the unique solution
    solver.pop()


def test_unsupported_ops_raise():
    from repro.smt.parser import parse_script
    with pytest.raises(UnsupportedFeatureError):
        parse_script("""
            (set-logic QF_FP)
            (declare-fun x () (_ FloatingPoint 3 4))
            (assert (fp.eq (fp.div RNE x x) x))
        """)
