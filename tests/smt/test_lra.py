"""LRA tests: delta-rationals, simplex, linearisation, end-to-end solving."""

import random
from fractions import Fraction

import pytest

from repro.errors import UnsupportedFeatureError
from repro.smt import (
    And, Equals, Implies, Ite, Not, Or, SmtSolver, bool_var, real_add,
    real_div, real_ge, real_gt, real_le, real_lt, real_mul, real_neg,
    real_sub, real_val, real_var,
)
from repro.smt.theories.lra.delta import DeltaRational
from repro.smt.theories.lra.simplex import Simplex
from repro.smt.theories.lra.theory import linearise, normalise_atom


class TestDeltaRational:
    def test_lexicographic_order(self):
        assert DeltaRational(1, 0) < DeltaRational(1, 1)
        assert DeltaRational(1, -1) < DeltaRational(1, 0)
        assert DeltaRational(0, 100) < DeltaRational(1, -100)

    def test_arithmetic(self):
        a = DeltaRational(Fraction(1, 2), 1)
        b = DeltaRational(Fraction(1, 2), -1)
        assert (a + b) == DeltaRational(1, 0)
        assert (a - b) == DeltaRational(0, 2)
        assert a.scale(2) == DeltaRational(1, 2)
        assert (-a) == DeltaRational(Fraction(-1, 2), -1)

    def test_concretise(self):
        a = DeltaRational(1, 2)
        assert a.concretise(Fraction(1, 100)) == Fraction(51, 50)


class TestSimplex:
    def test_trivial_feasible(self):
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, DeltaRational(0), "t1")
        simplex.assert_upper(x, DeltaRational(5), "t2")
        feasible, _ = simplex.check()
        assert feasible
        values = simplex.concretise()
        assert 0 <= values[x] <= 5

    def test_immediate_bound_conflict(self):
        simplex = Simplex()
        x = simplex.new_variable()
        assert simplex.assert_lower(x, DeltaRational(3), "lo") is None
        conflict = simplex.assert_upper(x, DeltaRational(2), "hi")
        assert conflict is not None
        assert set(conflict) == {"lo", "hi"}

    def test_row_infeasibility_with_explanation(self):
        # x + y <= 1, x >= 1, y >= 1 is infeasible.
        simplex = Simplex()
        x, y = simplex.new_variable(), simplex.new_variable()
        s = simplex.define({x: Fraction(1), y: Fraction(1)})
        simplex.assert_upper(s, DeltaRational(1), "sum")
        simplex.assert_lower(x, DeltaRational(1), "x")
        simplex.assert_lower(y, DeltaRational(1), "y")
        feasible, tags = simplex.check()
        assert not feasible
        assert set(tags) == {"sum", "x", "y"}

    def test_strict_bounds_need_delta(self):
        # 0 < x < 1 is feasible only with strict handling.
        simplex = Simplex()
        x = simplex.new_variable()
        simplex.assert_lower(x, DeltaRational(0, 1), "lo")
        simplex.assert_upper(x, DeltaRational(1, -1), "hi")
        feasible, _ = simplex.check()
        assert feasible
        value = simplex.concretise()[x]
        assert 0 < value < 1

    def test_strict_cycle_infeasible(self):
        # x < y and y < x.
        simplex = Simplex()
        x, y = simplex.new_variable(), simplex.new_variable()
        s1 = simplex.define({x: Fraction(1), y: Fraction(-1)})
        simplex.assert_upper(s1, DeltaRational(0, -1), "x<y")
        s2 = simplex.define({y: Fraction(1), x: Fraction(-1)})
        conflict = simplex.assert_upper(s2, DeltaRational(0, -1), "y<x")
        if conflict is None:
            feasible, tags = simplex.check()
            assert not feasible
            assert "x<y" in tags and "y<x" in tags

    @pytest.mark.parametrize("seed", range(15))
    def test_random_systems_vs_scipy(self, seed):
        """Feasibility agrees with scipy.optimize.linprog."""
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = random.Random(seed)
        num_vars = rng.randint(2, 4)
        num_constraints = rng.randint(2, 6)
        rows, bounds = [], []
        simplex = Simplex()
        variables = [simplex.new_variable() for _ in range(num_vars)]
        for index in range(num_constraints):
            coefficients = [rng.randint(-3, 3) for _ in range(num_vars)]
            constant = rng.randint(-5, 5)
            rows.append(coefficients)
            bounds.append(constant)
            slack = simplex.define({
                variables[i]: Fraction(c)
                for i, c in enumerate(coefficients) if c != 0
            })
            simplex.assert_upper(slack, DeltaRational(constant), index)
        feasible, _ = simplex.check()
        result = scipy_opt.linprog(
            c=[0.0] * num_vars, A_ub=rows, b_ub=bounds,
            bounds=[(None, None)] * num_vars, method="highs")
        assert feasible == result.success

    def test_feasible_assignment_satisfies_all_bounds(self):
        rng = random.Random(99)
        simplex = Simplex()
        variables = [simplex.new_variable() for _ in range(3)]
        constraints = []
        for index in range(5):
            coefficients = {v: Fraction(rng.randint(-2, 2))
                            for v in variables}
            constant = rng.randint(0, 6)
            slack = simplex.define(coefficients)
            simplex.assert_upper(slack, DeltaRational(constant), index)
            constraints.append((coefficients, constant))
        feasible, _ = simplex.check()
        assert feasible
        values = simplex.concretise()
        for coefficients, constant in constraints:
            total = sum(values[v] * c for v, c in coefficients.items())
            assert total <= constant


class TestLinearise:
    def test_simple_combination(self):
        x, y = real_var("lx"), real_var("ly")
        term = real_add(real_mul(real_val(2), x),
                        real_sub(y, real_val(3)))
        coefficients, constant = linearise(term)
        assert coefficients == {x: 2, y: 1}
        assert constant == -3

    def test_negation_and_division(self):
        x = real_var("lx")
        term = real_neg(real_div(x, real_val(2)))
        coefficients, constant = linearise(term)
        assert coefficients == {x: Fraction(-1, 2)}
        assert constant == 0

    def test_nonlinear_rejected(self):
        x, y = real_var("lx"), real_var("ly")
        with pytest.raises(UnsupportedFeatureError):
            linearise(real_mul(x, y))

    def test_division_by_variable_rejected(self):
        x, y = real_var("lx"), real_var("ly")
        with pytest.raises(UnsupportedFeatureError):
            linearise(real_div(x, y))

    def test_normalise_moves_everything_left(self):
        x, y = real_var("lx"), real_var("ly")
        atom = real_le(real_add(x, real_val(1)), real_add(y, real_val(4)))
        normalised = normalise_atom(atom)
        assert normalised.coefficients == {x: 1, y: -1}
        assert normalised.constant == 3
        assert not normalised.strict


class TestEndToEnd:
    def test_chain_of_strict_inequalities(self):
        variables = [real_var(f"c{i}") for i in range(4)]
        solver = SmtSolver()
        for a, b in zip(variables, variables[1:]):
            solver.assert_term(real_lt(a, b))
        solver.assert_term(real_gt(variables[0], real_val(0)))
        solver.assert_term(real_lt(variables[-1], real_val(1)))
        assert solver.check() is True
        model = solver.model()
        values = [model.value(v) for v in variables]
        assert values == sorted(values)
        assert 0 < values[0] and values[-1] < 1
        assert len(set(values)) == len(values)

    def test_equality_desugaring(self):
        x, y = real_var("ex"), real_var("ey")
        solver = SmtSolver()
        solver.assert_term(Equals(x, real_add(y, real_val(2))))
        solver.assert_term(Equals(y, real_val(5)))
        assert solver.check() is True
        model = solver.model()
        assert model.value(x) == 7
        assert model.value(y) == 5

    def test_negated_equality_forces_apartness(self):
        x, y = real_var("nx"), real_var("ny")
        solver = SmtSolver()
        solver.assert_term(Not(Equals(x, y)))
        solver.assert_term(real_le(x, y))
        assert solver.check() is True
        model = solver.model()
        assert model.value(x) < model.value(y)

    def test_real_ite_hoisting(self):
        x = real_var("hx")
        flag = bool_var("hflag")
        solver = SmtSolver()
        value = Ite(flag, real_val(10), real_val(20))
        solver.assert_term(Equals(x, value))
        solver.assert_term(real_gt(x, real_val(15)))
        assert solver.check() is True
        model = solver.model()
        assert model.value(x) == 20
        assert model.value(flag) is False

    def test_boolean_structure_over_atoms(self):
        x = real_var("bx")
        solver = SmtSolver()
        solver.assert_term(Or(real_lt(x, real_val(0)),
                              real_gt(x, real_val(10))))
        solver.assert_term(real_ge(x, real_val(0)))
        assert solver.check() is True
        assert solver.model().value(x) > 10

    def test_unsat_triangle(self):
        x, y, z = real_var("tx"), real_var("ty"), real_var("tz")
        solver = SmtSolver()
        solver.assert_term(real_lt(x, y))
        solver.assert_term(real_lt(y, z))
        solver.assert_term(real_lt(z, x))
        assert solver.check() is False

    def test_model_satisfies_original_assertions(self):
        rng = random.Random(7)
        variables = [real_var(f"m{i}") for i in range(3)]
        solver = SmtSolver()
        assertions = []
        for _ in range(4):
            coefficients = [rng.randint(-2, 2) for _ in variables]
            expr = real_val(0)
            for coefficient, var in zip(coefficients, variables):
                expr = real_add(expr,
                                real_mul(real_val(coefficient), var))
            atom = real_le(expr, real_val(rng.randint(0, 5)))
            assertions.append(atom)
            solver.assert_term(atom)
        if solver.check():
            model = solver.model()
            for assertion in assertions:
                assert model.value(assertion) is True

    def test_incremental_push_pop(self):
        x = real_var("ix")
        solver = SmtSolver()
        solver.assert_term(real_gt(x, real_val(0)))
        assert solver.check() is True
        solver.push()
        solver.assert_term(real_lt(x, real_val(0)))
        assert solver.check() is False
        solver.pop()
        assert solver.check() is True
