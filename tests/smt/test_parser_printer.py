"""SMT-LIB parser and printer tests, including round-trips."""

from fractions import Fraction

import pytest

from repro.errors import ParseError, UnsupportedFeatureError
from repro.smt import SmtSolver, bv_val, bv_var
from repro.smt.parser import parse_script, parse_term_string
from repro.smt.printer import print_term, write_script
from repro.smt.ops import Op


class TestCommands:
    def test_minimal_script(self):
        script = parse_script("""
            (set-logic QF_BV)
            (declare-fun x () (_ BitVec 8))
            (assert (bvult x #x10))
            (check-sat)
        """)
        assert script.logic == "QF_BV"
        assert len(script.assertions) == 1
        assert script.check_sat_seen
        assert "x" in script.declarations

    def test_declare_const(self):
        script = parse_script("""
            (declare-const b Bool)
            (assert b)
        """)
        assert script.assertions[0].name == "b"

    def test_projection_info(self):
        script = parse_script("""
            (declare-fun x () (_ BitVec 4))
            (declare-fun y () (_ BitVec 4))
            (set-info :projected-vars (x y))
            (assert (bvult x y))
        """)
        assert [v.name for v in script.projection] == ["x", "y"]

    def test_define_fun_inlined(self):
        script = parse_script("""
            (set-logic QF_BV)
            (declare-fun a () (_ BitVec 4))
            (define-fun double ((v (_ BitVec 4))) (_ BitVec 4)
                (bvadd v v))
            (assert (= (double a) #x4))
        """)
        solver = SmtSolver()
        solver.assert_term(script.assertions[0])
        assert solver.check() is True
        a = script.declarations["a"]
        assert (2 * solver.bv_value(a)) % 16 == 4

    def test_comments_and_whitespace(self):
        script = parse_script("""
            ; a comment
            (set-logic QF_BV)  ; trailing comment
            (declare-fun x () (_ BitVec 4))
            (assert (= x x))
        """)
        assert len(script.assertions) == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(frobnicate)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(assert (and true")


class TestTerms:
    def test_literals(self):
        assert parse_term_string("#b1010", {}).payload == 10
        assert parse_term_string("#xff", {}).payload == 255
        assert parse_term_string("(_ bv5 8)", {}).payload == 5
        assert parse_term_string("5", {}).payload == Fraction(5)
        assert parse_term_string("2.5", {}).payload == Fraction(5, 2)

    def test_let_binding(self):
        x = bv_var("x", 8)
        term = parse_term_string(
            "(let ((y (bvadd x #x01))) (bvult y x))", {"x": x})
        assert term.op == Op.BV_ULT

    def test_nested_let_shadowing(self):
        x = bv_var("x", 8)
        term = parse_term_string(
            "(let ((y #x01)) (let ((y (bvadd y y))) (bvadd x y)))",
            {"x": x})
        solver = SmtSolver()
        from repro.smt import Equals
        solver.assert_term(Equals(term, bv_val(2, 8)))
        solver.assert_term(Equals(x, bv_val(0, 8)))
        assert solver.check() is True

    def test_indexed_operators(self):
        x = bv_var("x", 8)
        env = {"x": x}
        assert parse_term_string("((_ extract 3 0) x)", env).sort.width == 4
        assert parse_term_string("((_ zero_extend 8) x)",
                                 env).sort.width == 16
        assert parse_term_string("((_ sign_extend 4) x)",
                                 env).sort.width == 12

    def test_rotate_desugars(self):
        x = bv_var("x", 8)
        term = parse_term_string("((_ rotate_left 3) x)", {"x": x})
        from repro.smt.evaluator import evaluate
        value = evaluate(term, {x: 0b10000001})
        assert value == 0b00001100

    def test_fp_literal(self):
        term = parse_term_string("(fp #b0 #b011 #b010)", {})
        assert term.sort.eb == 3 and term.sort.sb == 4
        assert term.payload == 0b0_011_010

    def test_fp_special_constants(self):
        assert parse_term_string("(_ +oo 3 4)", {}).payload == 0b0_111_000
        assert parse_term_string("(_ -zero 3 4)", {}).payload == 0b1_000_000
        nan = parse_term_string("(_ NaN 3 4)", {})
        assert nan.payload == 0b0_111_100

    def test_chained_equality(self):
        x, y, z = bv_var("x", 4), bv_var("y", 4), bv_var("z", 4)
        term = parse_term_string("(= x y z)", {"x": x, "y": y, "z": z})
        assert term.op == Op.AND

    def test_nary_real_arithmetic(self):
        from repro.smt import real_var
        r = real_var("r")
        term = parse_term_string("(+ r 1 2)", {"r": r})
        from repro.smt.evaluator import evaluate
        assert evaluate(term, {r: Fraction(1)}) == 4

    def test_unary_minus(self):
        term = parse_term_string("(- 5)", {})
        from repro.smt.evaluator import evaluate
        assert evaluate(term, {}) == -5

    def test_non_rne_rounding_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_script("""
                (declare-fun x () (_ FloatingPoint 3 4))
                (assert (fp.eq (fp.add RTZ x x) x))
            """)

    def test_uf_application(self):
        script = parse_script("""
            (declare-fun f ((_ BitVec 4)) (_ BitVec 4))
            (declare-fun x () (_ BitVec 4))
            (assert (= (f x) x))
        """)
        assert script.assertions[0].args[0].op == Op.APPLY

    def test_smt_equals_on_fp_handles_nan(self):
        script = parse_script("""
            (declare-fun x () (_ FloatingPoint 3 4))
            (assert (= x (_ NaN 3 4)))
        """)
        solver = SmtSolver()
        solver.assert_term(script.assertions[0])
        assert solver.check() is True  # NaN = NaN under SMT-LIB `=`


class TestRoundTrip:
    def roundtrip(self, text):
        script = parse_script(text)
        printed = write_script(script.assertions,
                               logic=script.logic or "ALL",
                               projection=script.projection)
        reparsed = parse_script(printed)
        assert len(reparsed.assertions) == len(script.assertions)
        for a, b in zip(script.assertions, reparsed.assertions):
            assert a is b, f"{print_term(a)} != {print_term(b)}"
        return reparsed

    def test_bv_roundtrip(self):
        self.roundtrip("""
            (set-logic QF_BV)
            (declare-fun x () (_ BitVec 8))
            (declare-fun y () (_ BitVec 8))
            (assert (bvult (bvadd x y) (bvmul x #x03)))
            (assert (= ((_ extract 3 0) x) #b0101))
        """)

    def test_mixed_roundtrip(self):
        script = self.roundtrip("""
            (set-logic QF_ABVFPLRA)
            (declare-fun x () (_ BitVec 8))
            (declare-fun r () Real)
            (declare-fun q () Real)
            (declare-fun h () (_ FloatingPoint 3 4))
            (declare-fun arr () (Array (_ BitVec 4) (_ BitVec 8)))
            (set-info :projected-vars (x))
            (assert (or (bvult x #x10) (< r q)))
            (assert (fp.leq h (fp.mul RNE h h)))
            (assert (= (select arr #x1) x))
            (assert (ite (fp.isNaN h) (< r 1.0) (<= q (/ 1.0 3.0))))
        """)
        assert [v.name for v in script.projection] == ["x"]

    def test_projection_survives_roundtrip(self):
        script = parse_script("""
            (declare-fun a () (_ BitVec 4))
            (declare-fun b () (_ BitVec 4))
            (set-info :projected-vars (a b))
            (assert (bvult a b))
        """)
        printed = write_script(script.assertions, "QF_BV",
                               script.projection)
        reparsed = parse_script(printed)
        assert [v.name for v in reparsed.projection] == ["a", "b"]
