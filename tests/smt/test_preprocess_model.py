"""Preprocessor and model-layer tests plus cross-layer property tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    And, Equals, Iff, Implies, Ite, Not, Or, SmtSolver, bool_var, bv_add,
    bv_mul, bv_ult, bv_val, bv_var, real_le, real_lt, real_val, real_var,
)
from repro.smt.evaluator import evaluate, satisfies
from repro.smt.model import Model, default_value, free_variables
from repro.smt.preprocess import Preprocessor
from repro.smt.ops import Op


class TestPreprocessor:
    def test_real_atoms_abstracted(self):
        pre = Preprocessor()
        r = real_var("pp_r")
        result = pre.process(real_lt(r, real_val(1)))
        assert len(result.new_atoms) == 1
        atom, abstraction = result.new_atoms[0]
        assert atom.op == Op.REAL_LT
        assert abstraction.sort.is_bool()

    def test_atom_deduplication(self):
        pre = Preprocessor()
        r = real_var("pp_r2")
        atom = real_lt(r, real_val(1))
        first = pre.process(Or(atom, bool_var("pp_b")))
        second = pre.process(And(atom, bool_var("pp_c")))
        assert len(first.new_atoms) == 1
        assert len(second.new_atoms) == 0  # same atom, same abstraction

    def test_frame_scoped_atoms(self):
        pre = Preprocessor()
        r = real_var("pp_r3")
        atom = real_lt(r, real_val(2))
        pre.push()
        in_frame = pre.process(atom)
        assert len(in_frame.new_atoms) == 1
        pre.pop()
        after_pop = pre.process(atom)
        assert len(after_pop.new_atoms) == 1  # registry was unwound

    def test_real_equality_desugared(self):
        pre = Preprocessor()
        r, q = real_var("pp_r4"), real_var("pp_q4")
        result = pre.process(Equals(r, q))
        # two weak inequalities r <= q and q <= r
        assert len(result.new_atoms) == 2
        assert all(a.op == Op.REAL_LE for a, _ in result.new_atoms)

    def test_real_ite_hoisting_emits_guards(self):
        pre = Preprocessor()
        flag = bool_var("pp_flag")
        hoisted = Ite(flag, real_val(1), real_val(2))
        result = pre.process(real_lt(hoisted, real_val(5)))
        # main assertion + two guard implications
        assert len(result.assertions) == 3

    def test_pure_bool_bv_untouched(self):
        pre = Preprocessor()
        x = bv_var("pp_x", 4)
        result = pre.process(bv_ult(x, bv_val(5, 4)))
        assert result.new_atoms == []
        assert len(result.assertions) == 1

    def test_non_bool_assertion_rejected(self):
        pre = Preprocessor()
        with pytest.raises(ValueError):
            pre.process(bv_var("pp_y", 4))


class TestModel:
    def test_default_completion(self):
        x = bv_var("md_x", 4)
        y = bv_var("md_y", 4)
        model = Model({x: 3})
        assert model.value(x) == 3
        assert model.value(y) == 0  # default completion
        assert model.value(bv_add(x, y)) == 3

    def test_free_variables(self):
        x, y = bv_var("fv_x", 4), bv_var("fv_y", 4)
        b = bool_var("fv_b")
        term = Ite(b, bv_add(x, y), x)
        assert free_variables(term) == {x, y, b}

    def test_default_values_by_sort(self):
        from repro.smt.sorts import (ArraySort, BitVecSort, BoolSort,
                                     RealSort, FloatSort)
        assert default_value(BoolSort()) is False
        assert default_value(BitVecSort(8)) == 0
        assert default_value(RealSort()) == 0
        assert default_value(FloatSort(3, 4)) == 0
        array = default_value(ArraySort(BitVecSort(2), BitVecSort(2)))
        assert array.get(1) == 0

    def test_model_repr_is_stable(self):
        x = bv_var("mr_x", 4)
        assert "mr_x" in repr(Model({x: 7}))

    def test_satisfies_helper(self):
        x = bv_var("sh_x", 4)
        assertions = [bv_ult(x, bv_val(5, 4))]
        assert satisfies(assertions, {x: 3})
        assert not satisfies(assertions, {x: 9})


class TestModelSoundnessProperty:
    """For random mixed formulas: SAT models must satisfy the original
    assertions under the reference evaluator; UNSAT answers must have no
    model in a brute-force sweep of a small discrete space."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mixed_formulas(self, seed):
        rng = random.Random(7000 + seed)
        x = bv_var(f"mx_{seed}", 3)
        b = bool_var(f"mb_{seed}")
        r = real_var(f"mr_{seed}")

        atoms = [
            bv_ult(x, bv_val(rng.randrange(1, 8), 3)),
            Equals(x, bv_val(rng.randrange(8), 3)),
            b,
            real_lt(r, real_val(rng.randint(-1, 2))),
            real_lt(real_val(0), r),
        ]

        def formula(depth):
            if depth == 0:
                return rng.choice(atoms)
            connective = rng.randrange(3)
            if connective == 0:
                return Not(formula(depth - 1))
            if connective == 1:
                return And(formula(depth - 1), formula(depth - 1))
            return Or(formula(depth - 1), formula(depth - 1))

        assertion = formula(3)
        solver = SmtSolver()
        solver.assert_term(assertion)
        if solver.check():
            model = solver.model()
            assert model.value(assertion) is True
        else:
            # Brute force over the discrete part with r from a small grid.
            from fractions import Fraction
            found = False
            for xv in range(8):
                for bv_ in (False, True):
                    for rv in (Fraction(-2), Fraction(1, 2), Fraction(1),
                               Fraction(3, 2), Fraction(3)):
                        if evaluate(assertion, {x: xv, b: bv_, r: rv}):
                            found = True
            assert not found, "solver said UNSAT but a model exists"


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=60, deadline=None)
def test_bv_arithmetic_ring_properties(a, b, c):
    """Associativity/commutativity/distributivity at the semantic level —
    guards the shared semantics all layers rely on."""
    from repro.smt.semantics import apply_op
    from repro.smt.sorts import BitVecSort

    sort = BitVecSort(8)

    def op(name, u, v):
        return apply_op(f"bv.{name}", sort, (sort, sort), (u, v))

    assert op("add", a, b) == op("add", b, a)
    assert op("mul", a, b) == op("mul", b, a)
    assert op("add", op("add", a, b), c) == op("add", a, op("add", b, c))
    assert (op("mul", a, op("add", b, c))
            == op("add", op("mul", a, b), op("mul", a, c)))
