"""Printer edge cases and full round-trip property tests."""

import random
from fractions import Fraction

import pytest

from repro.smt import (
    And, Distinct, Equals, Ite, Not, Or, apply_uf, array_var, bool_var,
    bv_add, bv_ashr, bv_concat, bv_extract, bv_lshr, bv_mul, bv_sdiv,
    bv_shl, bv_sign_extend, bv_sle, bv_slt, bv_srem, bv_sub, bv_udiv,
    bv_ule, bv_ult, bv_urem, bv_val, bv_var, bv_xor, bv_zero_extend,
    fp_add, fp_eq, fp_from_bv, fp_is_nan, fp_leq, fp_lt, fp_mul, fp_neg,
    fp_to_bv, fp_val, fp_var, real_div, real_le, real_lt, real_val,
    real_var, select, store, uf,
)
from repro.smt.parser import parse_script
from repro.smt.printer import declaration, print_sort, print_term, write_script
from repro.smt.sorts import (
    ArraySort, BitVecSort, BoolSort, FloatSort, RealSort,
)


class TestPrintTerm:
    def test_bv_constants_hex_vs_binary(self):
        assert print_term(bv_val(255, 8)) == "#xff"
        assert print_term(bv_val(5, 3)) == "#b101"

    def test_negative_rational(self):
        assert print_term(real_val(-2)) == "(- 2.0)"
        assert print_term(real_val(Fraction(-1, 3))) == "(- (/ 1.0 3.0))"

    def test_fp_constant_fields(self):
        term = fp_val(0b1_011_010, 3, 4)
        assert print_term(term) == "(fp #b1 #b011 #b010)"

    def test_quoted_symbol(self):
        weird = bv_var("has space", 4)
        assert print_term(weird) == "|has space|"

    def test_fp_rounded_ops_carry_rne(self):
        a = fp_var("pr_a", 3, 4)
        assert print_term(fp_add(a, a)).startswith("(fp.add RNE ")
        assert print_term(fp_mul(a, a)).startswith("(fp.mul RNE ")

    def test_uf_application(self):
        f = uf("pr_f", [BitVecSort(4)], BitVecSort(4))
        x = bv_var("pr_x", 4)
        assert print_term(apply_uf(f, x)) == "(pr_f pr_x)"

    def test_sorts(self):
        assert print_sort(BoolSort()) == "Bool"
        assert print_sort(RealSort()) == "Real"
        assert print_sort(BitVecSort(7)) == "(_ BitVec 7)"
        assert print_sort(FloatSort(5, 11)) == "(_ FloatingPoint 5 11)"
        assert (print_sort(ArraySort(BitVecSort(2), BoolSort()))
                == "(Array (_ BitVec 2) Bool)")

    def test_declaration_forms(self):
        assert declaration(bv_var("d_x", 4)) == (
            "(declare-fun d_x () (_ BitVec 4))")
        f = uf("d_f", [BoolSort(), BitVecSort(2)], RealSort())
        assert declaration(f) == (
            "(declare-fun d_f (Bool (_ BitVec 2)) Real)")


class TestRoundTripProperty:
    OPS = [bv_add, bv_sub, bv_mul, bv_udiv, bv_urem, bv_sdiv, bv_srem,
           bv_shl, bv_lshr, bv_ashr, bv_xor]
    PREDS = [bv_ult, bv_ule, bv_slt, bv_sle]

    @pytest.mark.parametrize("seed", range(15))
    def test_random_bv_round_trip(self, seed):
        rng = random.Random(seed)
        x = bv_var("rt_x", 8)
        y = bv_var("rt_y", 8)

        def build(depth):
            if depth == 0 or rng.random() < 0.3:
                choice = rng.random()
                if choice < 0.4:
                    return x
                if choice < 0.8:
                    return y
                return bv_val(rng.randrange(256), 8)
            pick = rng.random()
            if pick < 0.7:
                return rng.choice(self.OPS)(build(depth - 1),
                                            build(depth - 1))
            if pick < 0.8:
                inner = build(depth - 1)
                hi = rng.randrange(2, 8)
                extracted = bv_extract(inner, hi, hi - 2)
                return bv_zero_extend(extracted, 8 - extracted.sort.width)
            return Ite(rng.choice(self.PREDS)(build(depth - 1),
                                              build(depth - 1)),
                       build(depth - 1), build(depth - 1))

        assertion = rng.choice(self.PREDS)(build(3), build(3))
        text = write_script([assertion], "QF_BV", [x])
        script = parse_script(text)
        assert script.assertions[0] is assertion

    def test_mixed_theory_round_trip(self):
        x = bv_var("mt_x", 8)
        r = real_var("mt_r")
        h = fp_var("mt_h", 3, 4)
        arr = array_var("mt_a", BitVecSort(4), BitVecSort(8))
        f = uf("mt_f", [BitVecSort(8)], BitVecSort(8))
        assertions = [
            Or(bv_ult(x, bv_val(16, 8)),
               real_lt(real_div(r, real_val(2)), real_val(1))),
            fp_leq(fp_neg(h), fp_mul(h, h)),
            Equals(select(store(arr, bv_val(1, 4), x),
                          bv_extract(x, 3, 0)), apply_uf(f, x)),
            Ite(fp_is_nan(h), real_le(r, real_val(0)),
                Equals(fp_to_bv(h), bv_val(3, 7))),
            Distinct(x, bv_val(0, 8), bv_val(255, 8)),
        ]
        text = write_script(assertions, "QF_ABVFPLRA", [x])
        script = parse_script(text)
        for original, reparsed in zip(assertions, script.assertions):
            assert original is reparsed

    def test_concat_and_extensions_round_trip(self):
        x = bv_var("ce_x", 4)
        term = Equals(
            bv_concat(bv_sign_extend(x, 2), bv_zero_extend(x, 2)),
            bv_val(77, 12))
        script = parse_script(write_script([term], "QF_BV", [x]))
        assert script.assertions[0] is term
