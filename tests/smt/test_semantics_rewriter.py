"""Semantics + rewriter tests: folding must agree with the evaluator."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    And, Equals, FALSE, Ite, Not, Or, TRUE, Xor, bool_var, bv_add, bv_and,
    bv_ashr, bv_extract, bv_lshr, bv_mul, bv_neg, bv_not, bv_or, bv_sdiv,
    bv_shl, bv_sle, bv_slt, bv_srem, bv_sub, bv_udiv, bv_ule, bv_ult,
    bv_urem, bv_val, bv_var, bv_xor, bv_concat, bv_sign_extend,
    bv_zero_extend, real_add, real_le, real_lt, real_mul, real_val,
    real_var,
)
from repro.smt.evaluator import evaluate
from repro.smt.rewriter import rewrite

BV_BINARY = [bv_add, bv_sub, bv_mul, bv_udiv, bv_urem, bv_sdiv, bv_srem,
             bv_and, bv_or, bv_xor, bv_shl, bv_lshr, bv_ashr]
BV_PREDS = [bv_ult, bv_ule, bv_slt, bv_sle]


class TestConstantFolding:
    @given(st.integers(0, 255), st.integers(0, 255),
           st.sampled_from(range(len(BV_BINARY))))
    @settings(max_examples=200, deadline=None)
    def test_bv_binary_folds_to_semantics(self, a, b, op_index):
        op = BV_BINARY[op_index]
        term = op(bv_val(a, 8), bv_val(b, 8))
        folded = rewrite(term)
        assert folded.is_const()
        assert folded.payload == evaluate(term, {})

    @given(st.integers(0, 255), st.integers(0, 255),
           st.sampled_from(range(len(BV_PREDS))))
    @settings(max_examples=100, deadline=None)
    def test_bv_predicates_fold(self, a, b, op_index):
        op = BV_PREDS[op_index]
        folded = rewrite(op(bv_val(a, 8), bv_val(b, 8)))
        assert folded in (TRUE, FALSE)
        assert folded.payload == evaluate(op(bv_val(a, 8), bv_val(b, 8)), {})

    def test_division_by_zero_smtlib_semantics(self):
        # udiv by 0 = all-ones; urem by 0 = dividend
        assert rewrite(bv_udiv(bv_val(13, 8), bv_val(0, 8))).payload == 255
        assert rewrite(bv_urem(bv_val(13, 8), bv_val(0, 8))).payload == 13
        # sdiv by 0: 1 if negative else all-ones
        assert rewrite(bv_sdiv(bv_val(200, 8), bv_val(0, 8))).payload == 1
        assert rewrite(bv_sdiv(bv_val(5, 8), bv_val(0, 8))).payload == 255

    def test_shift_beyond_width(self):
        assert rewrite(bv_shl(bv_val(1, 8), bv_val(9, 8))).payload == 0
        assert rewrite(bv_lshr(bv_val(128, 8), bv_val(8, 8))).payload == 0
        assert rewrite(bv_ashr(bv_val(128, 8), bv_val(200, 8))).payload == 255

    def test_extract_concat_extend_fold(self):
        v = bv_val(0b1011_0110, 8)
        assert rewrite(bv_extract(v, 5, 2)).payload == 0b1101
        assert rewrite(bv_concat(bv_val(0b10, 2), bv_val(0b01, 2))).payload == 0b1001
        assert rewrite(bv_zero_extend(bv_val(0b11, 2), 2)).payload == 0b11
        assert rewrite(bv_sign_extend(bv_val(0b10, 2), 2)).payload == 0b1110

    def test_real_folding(self):
        term = real_add(real_val(Fraction(1, 3)), real_val(Fraction(1, 6)))
        assert rewrite(term).payload == Fraction(1, 2)
        assert rewrite(real_lt(real_val(1), real_val(2))) is TRUE


class TestIdentities:
    def test_double_negation(self):
        b = bool_var("b")
        assert rewrite(Not(Not(b))) is b

    def test_and_with_true_false(self):
        b = bool_var("b")
        assert rewrite(And(b, TRUE)) is b
        assert rewrite(And(b, FALSE)) is FALSE

    def test_or_with_true_false(self):
        b = bool_var("b")
        assert rewrite(Or(b, FALSE)) is b
        assert rewrite(Or(b, TRUE)) is TRUE

    def test_xor_self_cancels(self):
        b = bool_var("b")
        assert rewrite(Xor(b, b)) is FALSE

    def test_ite_constant_condition(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        assert rewrite(Ite(TRUE, x, y)) is x
        assert rewrite(Ite(FALSE, x, y)) is y
        assert rewrite(Ite(bool_var("c"), x, x)) is x

    def test_eq_reflexive(self):
        x = bv_var("x", 8)
        assert rewrite(Equals(x, x)) is TRUE

    def test_bv_add_zero(self):
        x = bv_var("x", 8)
        assert rewrite(bv_add(x, bv_val(0, 8))) is x

    def test_bv_mul_one_zero(self):
        x = bv_var("x", 8)
        assert rewrite(bv_mul(x, bv_val(1, 8))) is x
        assert rewrite(bv_mul(x, bv_val(0, 8))).payload == 0

    def test_bv_xor_self(self):
        x = bv_var("x", 8)
        assert rewrite(bv_xor(x, x)).payload == 0

    def test_full_extract_collapses(self):
        x = bv_var("x", 8)
        assert rewrite(bv_extract(x, 7, 0)) is x

    def test_ult_irreflexive(self):
        x = bv_var("x", 8)
        assert rewrite(bv_ult(x, x)) is FALSE
        assert rewrite(bv_ule(x, x)) is TRUE


class TestRewriteSoundness:
    """Random terms: rewriting must preserve the evaluated value."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_bv_terms_preserved(self, seed):
        rng = random.Random(seed)
        variables = [bv_var(f"v{i}", 6) for i in range(3)]
        assignment = {v: rng.randrange(64) for v in variables}

        def random_term(depth):
            if depth == 0 or rng.random() < 0.3:
                if rng.random() < 0.5:
                    return rng.choice(variables)
                return bv_val(rng.randrange(64), 6)
            op = rng.choice(BV_BINARY)
            return op(random_term(depth - 1), random_term(depth - 1))

        term = random_term(4)
        rewritten = rewrite(term)
        assert (evaluate(term, assignment)
                == evaluate(rewritten, assignment))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_bool_terms_preserved(self, seed):
        rng = random.Random(100 + seed)
        variables = [bool_var(f"b{i}") for i in range(4)]
        assignment = {v: rng.random() < 0.5 for v in variables}

        def random_term(depth):
            if depth == 0 or rng.random() < 0.3:
                return rng.choice(variables + [TRUE, FALSE])
            choice = rng.randrange(4)
            if choice == 0:
                return Not(random_term(depth - 1))
            if choice == 1:
                return And(random_term(depth - 1), random_term(depth - 1))
            if choice == 2:
                return Or(random_term(depth - 1), random_term(depth - 1))
            return Ite(random_term(depth - 1), random_term(depth - 1),
                       random_term(depth - 1))

        term = random_term(5)
        assert (evaluate(term, assignment)
                == evaluate(rewrite(term), assignment))
