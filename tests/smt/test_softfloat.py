"""SoftFloat reference tests, including cross-checks against host floats."""

import math
import struct
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.theories.fp.softfloat import (
    FLOAT16, FLOAT32, FLOAT64, FpFormat, SoftFloat,
)


@pytest.fixture(scope="module")
def f32():
    return SoftFloat(FLOAT32)


@pytest.fixture(scope="module")
def f64():
    return SoftFloat(FLOAT64)


class TestPackingAndClassification:
    def test_zero_and_inf_patterns(self, f32):
        assert f32.zero(0) == 0
        assert f32.zero(1) == 0x80000000
        assert f32.inf(0) == 0x7F800000
        assert f32.inf(1) == 0xFF800000

    def test_nan_is_canonical_quiet(self, f32):
        assert f32.is_nan(f32.nan())
        assert math.isnan(f32.to_python(f32.nan()))

    def test_classification(self, f32):
        one = f32.from_python(1.0)
        assert f32.is_normal(one)
        assert not f32.is_subnormal(one)
        tiny = 1  # smallest positive subnormal
        assert f32.is_subnormal(tiny)
        assert not f32.is_normal(tiny)
        assert f32.is_zero(f32.zero(1))
        assert f32.is_negative(f32.from_python(-2.5))
        assert f32.is_positive(f32.from_python(2.5))
        assert not f32.is_negative(f32.nan())
        assert not f32.is_positive(f32.nan())

    def test_round_trip_python(self, f32):
        for value in (0.0, -0.0, 1.0, -1.5, 3.14159, 1e-40, 1e38):
            assert f32.to_python(f32.from_python(value)) == struct.unpack(
                "<f", struct.pack("<f", value))[0]

    def test_to_fraction(self, f32):
        assert f32.to_fraction(f32.from_python(0.5)) == Fraction(1, 2)
        assert f32.to_fraction(f32.from_python(-0.25)) == Fraction(-1, 4)
        with pytest.raises(ValueError):
            f32.to_fraction(f32.inf(0))


class TestArithmeticVsHost:
    """The host's IEEE doubles are the oracle for Float64 RNE arithmetic."""

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.floats(allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=300, deadline=None)
    def test_add_matches_hardware(self, a, b):
        f64 = SoftFloat(FLOAT64)
        got = f64.add(f64.from_python(a), f64.from_python(b))
        expected = f64.from_python(a + b)
        assert got == expected, (a, b)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.floats(allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=300, deadline=None)
    def test_mul_matches_hardware(self, a, b):
        f64 = SoftFloat(FLOAT64)
        got = f64.mul(f64.from_python(a), f64.from_python(b))
        expected = f64.from_python(a * b)
        assert got == expected, (a, b)

    @given(st.floats(width=32), st.floats(width=32))
    @settings(max_examples=300, deadline=None)
    def test_float32_add_including_specials(self, a, b):
        numpy = pytest.importorskip("numpy")
        f32 = SoftFloat(FLOAT32)
        pa, pb = f32.from_python(a), f32.from_python(b)
        got = f32.add(pa, pb)
        with numpy.errstate(all="ignore"):
            expected = f32.from_python(
                float(numpy.float32(a) + numpy.float32(b)))
        if f32.is_nan(got) and f32.is_nan(expected):
            return
        assert got == expected, (a, b)

    def test_subnormal_boundary_rounding(self, f32):
        # Smallest normal / 2 rounds into the subnormal range exactly.
        smallest_normal = f32.pack(0, 1, 0)
        half = f32.mul(smallest_normal, f32.from_python(0.5))
        assert f32.is_subnormal(half)
        assert f32.to_fraction(half) == f32.to_fraction(smallest_normal) / 2

    def test_overflow_goes_to_infinity(self, f32):
        big = f32.max_normal(0)
        assert f32.is_inf(f32.mul(big, f32.from_python(2.0)))
        assert f32.is_inf(f32.add(big, big))

    def test_inf_minus_inf_is_nan(self, f32):
        assert f32.is_nan(f32.add(f32.inf(0), f32.inf(1)))

    def test_inf_times_zero_is_nan(self, f32):
        assert f32.is_nan(f32.mul(f32.inf(0), f32.zero(0)))

    def test_negative_zero_sum(self, f32):
        nz = f32.zero(1)
        assert f32.add(nz, nz) == nz              # -0 + -0 = -0
        assert f32.add(nz, f32.zero(0)) == 0       # -0 + +0 = +0
        one = f32.from_python(1.0)
        m_one = f32.from_python(-1.0)
        assert f32.add(one, m_one) == 0            # exact cancel -> +0


class TestComparisons:
    def test_nan_unordered(self, f32):
        nan = f32.nan()
        one = f32.from_python(1.0)
        assert not f32.eq(nan, nan)
        assert not f32.lt(nan, one)
        assert not f32.leq(one, nan)
        assert f32.compare(nan, one) is None

    def test_zero_signs_equal(self, f32):
        assert f32.eq(f32.zero(0), f32.zero(1))
        assert not f32.lt(f32.zero(1), f32.zero(0))

    @given(st.floats(allow_nan=False, width=32),
           st.floats(allow_nan=False, width=32))
    @settings(max_examples=200, deadline=None)
    def test_ordering_matches_host(self, a, b):
        f32 = SoftFloat(FLOAT32)
        pa, pb = f32.from_python(a), f32.from_python(b)
        assert f32.lt(pa, pb) == (a < b)
        assert f32.leq(pa, pb) == (a <= b)
        assert f32.eq(pa, pb) == (a == b)

    def test_min_max_zero_conventions(self, f32):
        pz, nz = f32.zero(0), f32.zero(1)
        assert f32.min_(pz, nz) == nz
        assert f32.max_(nz, pz) == pz

    def test_min_max_nan_gives_other(self, f32):
        one = f32.from_python(1.0)
        assert f32.min_(f32.nan(), one) == one
        assert f32.max_(one, f32.nan()) == one


class TestFromFraction:
    def test_exact_values(self, f32):
        assert f32.from_fraction(Fraction(1, 2)) == f32.from_python(0.5)
        assert f32.from_fraction(3) == f32.from_python(3.0)
        assert f32.from_fraction(Fraction(-7, 4)) == f32.from_python(-1.75)

    def test_inexact_rounds_to_nearest(self, f32):
        assert f32.from_fraction(Fraction(1, 3)) == f32.from_python(1 / 3)
        assert f32.from_fraction(Fraction(1, 10)) == f32.from_python(0.1)

    @given(st.integers(-10 ** 6, 10 ** 6), st.integers(1, 10 ** 6))
    @settings(max_examples=200, deadline=None)
    def test_matches_host_division(self, num, den):
        f64 = SoftFloat(FLOAT64)
        got = f64.from_fraction(Fraction(num, den))
        expected = f64.from_python(num / den)
        assert got == expected


class TestTinyFormats:
    """Exhaustive checks on FP(3,3): 64 bit patterns."""

    def test_add_commutative(self):
        sf = SoftFloat(FpFormat(3, 3))
        for a in range(64):
            for b in range(64):
                x, y = sf.add(a, b), sf.add(b, a)
                assert x == y or (sf.is_nan(x) and sf.is_nan(y))

    def test_mul_commutative(self):
        sf = SoftFloat(FpFormat(3, 3))
        for a in range(64):
            for b in range(64):
                x, y = sf.mul(a, b), sf.mul(b, a)
                assert x == y or (sf.is_nan(x) and sf.is_nan(y))

    def test_add_identity_zero(self):
        sf = SoftFloat(FpFormat(3, 3))
        for a in range(64):
            if sf.is_nan(a):
                continue
            assert sf.add(a, sf.zero(0)) == a or sf.is_zero(a)

    def test_exact_values_against_fraction_model(self):
        """Every finite FP(3,3) add agrees with exact rational rounding."""
        sf = SoftFloat(FpFormat(3, 3))
        for a in range(64):
            for b in range(64):
                if not (sf.is_normal(a) or sf.is_subnormal(a)
                        or sf.is_zero(a)):
                    continue
                if not (sf.is_normal(b) or sf.is_subnormal(b)
                        or sf.is_zero(b)):
                    continue
                result = sf.add(a, b)
                exact = sf.to_fraction(a) + sf.to_fraction(b)
                rounded = sf.from_fraction(exact)
                if sf.is_zero(result) and sf.is_zero(rounded):
                    continue  # sign-of-zero conventions differ by path
                assert result == rounded, (a, b)
