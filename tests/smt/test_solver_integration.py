"""End-to-end SMT solver tests: hybrid formulas, enumeration, validation.

The key invariant exercised here is the one the whole counting stack rests
on: every model the solver produces evaluates the original assertions to
True, and blocking-clause enumeration over projected variables visits each
projected assignment exactly once.
"""

import random

import pytest

from repro.errors import SolverTimeoutError
from repro.smt import (
    And, Equals, Iff, Implies, Ite, Not, Or, SmtSolver, bool_var, bv_add,
    bv_and, bv_mul, bv_ult, bv_val, bv_var, bv_xor, fp_leq, fp_lt, fp_var,
    real_le, real_lt, real_val, real_var, fp_from_bv, fp_to_bv,
)
from repro.smt.evaluator import evaluate
from repro.utils.deadline import Deadline


def enumerate_projected(solver, projection_vars):
    """All projected assignments via blocking clauses (the enum pattern)."""
    bits_of = {v: solver.ensure_bits(v) for v in projection_vars}
    seen = []
    while solver.check():
        assignment = tuple(solver.bv_value(v) for v in projection_vars)
        seen.append(assignment)
        blocking = []
        for var in projection_vars:
            value = solver.bv_value(var)
            for position, literal in enumerate(bits_of[var]):
                blocking.append(-literal if (value >> position) & 1
                                else literal)
        solver.add_clause_lits(blocking)
        assert len(seen) <= 4096, "enumeration runaway"
    return seen


class TestHybridFormulas:
    def test_bv_real_bridge(self):
        x = bv_var("hyb_x", 4)
        r = real_var("hyb_r")
        solver = SmtSolver()
        # x < 8 <-> r > 0, and r < -1: forces x >= 8
        solver.assert_term(Iff(bv_ult(x, bv_val(8, 4)),
                               real_lt(real_val(0), r)))
        solver.assert_term(real_lt(r, real_val(-1)))
        assert solver.check() is True
        assert solver.bv_value(x) >= 8

    def test_fp_real_bv_three_way(self):
        x = bv_var("three_x", 4)
        r = real_var("three_r")
        h = fp_var("three_h", 3, 4)
        solver = SmtSolver()
        solver.assert_term(Implies(fp_lt(h, fp_from_bv(bv_val(0, 7), 3, 4)),
                                   bv_ult(x, bv_val(4, 4))))
        solver.assert_term(Implies(bv_ult(x, bv_val(4, 4)),
                                   real_le(r, real_val(0))))
        solver.assert_term(real_lt(real_val(1), r))
        solver.assert_term(Equals(fp_to_bv(h), bv_val(0b1_011_000, 7)))
        # h = -1.0 < 0 -> x < 4 -> r <= 0, contradicting r > 1.
        assert solver.check() is False

    def test_model_validates_hybrid(self):
        x = bv_var("val_x", 4)
        r = real_var("val_r")
        assertion = And(
            Or(bv_ult(x, bv_val(5, 4)), real_lt(r, real_val(0))),
            Implies(bv_ult(x, bv_val(5, 4)), real_lt(real_val(10), r)),
        )
        solver = SmtSolver()
        solver.assert_term(assertion)
        assert solver.check() is True
        assert solver.model().value(assertion) is True


class TestProjectedEnumeration:
    def test_enumeration_matches_brute_force(self):
        x, y = bv_var("pe_x", 3), bv_var("pe_y", 3)
        formula = bv_ult(bv_add(x, y), bv_val(4, 3))
        solver = SmtSolver()
        solver.assert_term(formula)
        seen = enumerate_projected(solver, [x, y])
        expected = {
            (a, b) for a in range(8) for b in range(8)
            if evaluate(formula, {x: a, y: b})
        }
        assert set(seen) == expected
        assert len(seen) == len(expected)  # no duplicates

    def test_projection_hides_witness_variables(self):
        """Count distinct x such that EXISTS y: x = 2y (3-bit)."""
        x, y = bv_var("pw_x", 3), bv_var("pw_y", 3)
        solver = SmtSolver()
        solver.assert_term(Equals(x, bv_mul(y, bv_val(2, 3))))
        seen = enumerate_projected(solver, [x])
        # x = 2y mod 8 hits exactly the even residues.
        assert sorted(v for (v,) in seen) == [0, 2, 4, 6]

    def test_unconstrained_projection_var_enumerates_fully(self):
        x = bv_var("un_x", 2)
        solver = SmtSolver()
        solver.assert_term(Equals(bv_val(1, 1), bv_val(1, 1)))  # trivial
        seen = enumerate_projected(solver, [x])
        assert sorted(v for (v,) in seen) == [0, 1, 2, 3]

    def test_projection_with_continuous_witness(self):
        """The hybrid counting semantics: count x with a real completion."""
        x = bv_var("cw_x", 3)
        r = real_var("cw_r")
        solver = SmtSolver()
        # r must lie strictly between x and 4: possible only for x < 4.
        solver.assert_term(real_lt(real_val(0), r))
        solver.assert_term(real_lt(r, real_val(4)))
        for value in range(8):
            solver.assert_term(
                Implies(Equals(x, bv_val(value, 3)),
                        real_lt(real_val(value), r)))
        seen = enumerate_projected(solver, [x])
        assert sorted(v for (v,) in seen) == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", range(6))
    def test_random_bv_formulas_counted_exactly(self, seed):
        rng = random.Random(seed)
        x, y = bv_var(f"rc_x{seed}", 3), bv_var(f"rc_y{seed}", 3)
        operators = [bv_add, bv_mul, bv_and, bv_xor]
        left = rng.choice(operators)(x, y)
        threshold = bv_val(rng.randrange(1, 8), 3)
        formula = bv_ult(left, threshold)
        solver = SmtSolver()
        solver.assert_term(formula)
        seen = enumerate_projected(solver, [x, y])
        expected = sum(
            1 for a in range(8) for b in range(8)
            if evaluate(formula, {x: a, y: b}))
        assert len(seen) == expected


class TestIncrementalDiscipline:
    def test_push_pop_restores_count(self):
        x = bv_var("ip_x", 3)
        solver = SmtSolver()
        solver.assert_term(bv_ult(x, bv_val(6, 3)))
        solver.push()
        solver.assert_term(bv_ult(bv_val(2, 3), x))
        inner = enumerate_projected(solver, [x])
        assert sorted(v for (v,) in inner) == [3, 4, 5]
        solver.pop()
        outer = enumerate_projected(solver, [x])
        assert sorted(v for (v,) in outer) == [0, 1, 2, 3, 4, 5]

    def test_repeated_cell_counting(self):
        """Many push/enumerate/pop cycles — the pact hot loop."""
        x = bv_var("rep_x", 4)
        solver = SmtSolver()
        solver.assert_term(bv_ult(x, bv_val(12, 4)))
        bits = solver.ensure_bits(x)
        for round_index in range(20):
            bit = round_index % 4
            parity = round_index % 2 == 0
            solver.push()
            solver.assert_xor_bits([bits[bit]], parity)
            count = len(enumerate_projected(solver, [x]))
            expected = sum(1 for v in range(12)
                           if ((v >> bit) & 1) == parity)
            assert count == expected
            solver.pop()

    def test_deadline_propagates(self):
        x, y = bv_var("dl_x", 16), bv_var("dl_y", 16)
        solver = SmtSolver()
        solver.assert_term(Equals(bv_mul(x, y), bv_val(12345, 16)))
        with pytest.raises(SolverTimeoutError):
            solver.check(deadline=Deadline(0.0))


class TestXorIntegration:
    def test_xor_bits_constraint(self):
        x = bv_var("xi_x", 4)
        solver = SmtSolver()
        bits = solver.ensure_bits(x)
        solver.assert_xor_bits(bits, True)  # odd parity
        seen = enumerate_projected(solver, [x])
        assert sorted(v for (v,) in seen) == [
            v for v in range(16) if bin(v).count("1") % 2 == 1]

    def test_xor_with_negated_literals(self):
        x = bv_var("xn_x", 2)
        solver = SmtSolver()
        bits = solver.ensure_bits(x)
        solver.assert_xor_bits([-bits[0], bits[1]], False)
        seen = {v for (v,) in enumerate_projected(solver, [x])}
        expected = {v for v in range(4)
                    if ((v & 1) ^ 1) ^ ((v >> 1) & 1) == 0}
        assert seen == expected
