"""Term layer tests: interning, sort checking, operator overloads."""

from fractions import Fraction

import pytest

from repro.errors import SortError
from repro.smt import (
    And, BitVecSort, BoolSort, Equals, FALSE, Float32, FloatSort, Ite, Not,
    Or, RealSort, TRUE, Xor, bool_var, bv_add, bv_concat, bv_extract,
    bv_val, bv_var, fp_val, fp_var, real_val, real_var, select, store,
    array_var, apply_uf, uf,
)
from repro.smt.sorts import ArraySort


class TestSorts:
    def test_bv_sort_interned(self):
        assert BitVecSort(8) is BitVecSort(8)
        assert BitVecSort(8) is not BitVecSort(9)

    def test_bool_singleton(self):
        assert BoolSort() is BoolSort()

    def test_fp_sort_interned(self):
        assert FloatSort(8, 24) is Float32

    def test_fp_total_width(self):
        assert Float32.total_width == 32
        assert FloatSort(5, 11).total_width == 16

    def test_array_sort_interned(self):
        s1 = ArraySort(BitVecSort(4), BitVecSort(8))
        s2 = ArraySort(BitVecSort(4), BitVecSort(8))
        assert s1 is s2

    def test_zero_width_bv_rejected(self):
        with pytest.raises(SortError):
            BitVecSort(0)


class TestInterning:
    def test_vars_interned_by_name_and_sort(self):
        assert bv_var("x", 8) is bv_var("x", 8)
        assert bv_var("x", 8) is not bv_var("x", 9)
        assert bv_var("x", 8) is not bv_var("y", 8)

    def test_compound_terms_interned(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        assert bv_add(x, y) is bv_add(x, y)

    def test_constants_normalised_modulo_width(self):
        assert bv_val(256, 8) is bv_val(0, 8)
        assert bv_val(-1, 8) is bv_val(255, 8)

    def test_real_constants_by_value(self):
        assert real_val(Fraction(1, 2)) is real_val("1/2")

    def test_extract_params_distinguish(self):
        x = bv_var("x", 8)
        assert bv_extract(x, 3, 0) is not bv_extract(x, 4, 0)
        assert bv_extract(x, 3, 0) is bv_extract(x, 3, 0)


class TestSortChecking:
    def test_width_mismatch_rejected(self):
        with pytest.raises(SortError):
            bv_add(bv_var("x", 8), bv_var("y", 9))

    def test_bool_bv_mix_rejected(self):
        with pytest.raises(SortError):
            And(bool_var("b"), bv_var("x", 1))

    def test_eq_across_sorts_rejected(self):
        with pytest.raises(SortError):
            Equals(bv_var("x", 8), real_var("r"))

    def test_fp_equals_requires_fp_eq(self):
        with pytest.raises(SortError):
            Equals(fp_var("a", 8, 24), fp_var("b", 8, 24))

    def test_ite_branch_mismatch(self):
        with pytest.raises(SortError):
            Ite(bool_var("c"), bv_var("x", 8), real_var("r"))

    def test_extract_out_of_range(self):
        with pytest.raises(SortError):
            bv_extract(bv_var("x", 8), 8, 0)

    def test_select_index_mismatch(self):
        a = array_var("a", BitVecSort(4), BitVecSort(8))
        with pytest.raises(SortError):
            select(a, bv_var("i", 5))

    def test_uf_arity_mismatch(self):
        f = uf("f", [BitVecSort(4), BitVecSort(4)], BoolSort())
        with pytest.raises(SortError):
            apply_uf(f, bv_var("i", 4))


class TestOverloads:
    def test_bv_arith_overloads(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        assert (x + y).op == "bv.add"
        assert (x - y).op == "bv.sub"
        assert (x * y).op == "bv.mul"
        assert (x & y).op == "bv.and"
        assert (x | y).op == "bv.or"
        assert (x ^ y).op == "bv.xor"
        assert (~x).op == "bv.not"
        assert (-x).op == "bv.neg"
        assert (x < y).op == "bv.ult"
        assert (x.slt(y)).op == "bv.slt"

    def test_int_coercion(self):
        x = bv_var("x", 8)
        assert (x + 1) is bv_add(x, bv_val(1, 8))

    def test_real_overloads(self):
        r, q = real_var("r"), real_var("q")
        assert (r + q).op == "real.add"
        assert (r < q).op == "real.lt"
        assert (r <= 1).op == "real.le"

    def test_bool_overloads(self):
        a, b = bool_var("a"), bool_var("b")
        assert (a & b).op == "bool.and"
        assert (a | b).op == "bool.or"
        assert (~a).op == "bool.not"

    def test_python_eq_is_identity_not_term(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        assert (x == y) is False
        assert (x == x) is True
        assert x.eq(y).op == "core.eq"


class TestNaryHelpers:
    def test_empty_and_is_true(self):
        assert And() is TRUE

    def test_empty_or_is_false(self):
        assert Or() is FALSE

    def test_singleton_collapses(self):
        b = bool_var("b")
        assert And(b) is b
        assert Or(b) is b

    def test_and_accepts_list(self):
        a, b = bool_var("a"), bool_var("b")
        assert And([a, b]) is And(a, b)

    def test_concat_widths(self):
        x, y = bv_var("x", 3), bv_var("y", 5)
        assert bv_concat(x, y).sort.width == 8

    def test_fp_val_masks(self):
        v = fp_val(1 << 40, 3, 4)  # width 7; high bits dropped
        assert v.payload < (1 << 7)
