"""CLI tests (count / enum / generate round trips)."""

import pytest

from repro.cli import main


@pytest.fixture()
def smt_file(tmp_path):
    path = tmp_path / "toy.smt2"
    path.write_text("""
        (set-logic QF_BV)
        (declare-fun x () (_ BitVec 6))
        (set-info :projected-vars (x))
        (assert (bvult x #b010100))
    """)
    return path


class TestCount:
    def test_count_xor(self, smt_file, capsys):
        assert main(["count", str(smt_file), "--family", "xor"]) == 0
        output = capsys.readouterr().out
        assert "s exact 20" in output or "s approximate" in output

    def test_count_project_override(self, smt_file, capsys):
        code = main(["count", str(smt_file), "--project", "x"])
        assert code == 0

    def test_count_exact_cc_counter(self, smt_file, capsys):
        assert main(["count", str(smt_file), "--counter",
                     "exact:cc"]) == 0
        output = capsys.readouterr().out
        assert "s exact 20" in output
        assert "counter exact:cc" in output

    def test_count_counter_overrides_family(self, smt_file, capsys):
        assert main(["count", str(smt_file), "--family", "prime",
                     "--counter", "enum"]) == 0
        assert "counter enum" in capsys.readouterr().out

    def test_count_unknown_counter(self, smt_file):
        assert main(["count", str(smt_file), "--counter", "nope"]) == 2

    def test_count_unknown_projection(self, smt_file):
        assert main(["count", str(smt_file), "--project", "nope"]) == 2

    def test_count_missing_projection(self, tmp_path):
        path = tmp_path / "noproj.smt2"
        path.write_text("""
            (declare-fun x () (_ BitVec 4))
            (assert (bvult x #x5))
        """)
        assert main(["count", str(path)]) == 2

    def test_enum(self, smt_file, capsys):
        assert main(["enum", str(smt_file)]) == 0
        assert "s exact 20" in capsys.readouterr().out

    def test_enum_limit(self, smt_file, capsys):
        assert main(["enum", str(smt_file), "--limit", "3"]) == 1
        assert "s limit" in capsys.readouterr().out


class TestEngineFlags:
    def test_count_with_jobs(self, smt_file, capsys):
        assert main(["count", str(smt_file), "--jobs", "2",
                     "--backend", "thread"]) == 0
        assert "s exact 20" in capsys.readouterr().out

    def test_count_cache_round_trip(self, smt_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["count", str(smt_file), "--cache-dir",
                     str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["count", str(smt_file), "--cache-dir",
                     str(cache_dir)]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_count_no_cache_ignores_dir(self, smt_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(["count", str(smt_file), "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["count", str(smt_file), "--cache-dir",
                     str(cache_dir), "--no-cache"]) == 0
        assert "cache hit" not in capsys.readouterr().out


class TestPortfolio:
    def test_portfolio_first_counter_wins(self, smt_file, capsys):
        code = main(["portfolio", str(smt_file), "--counters",
                     "pact:xor,pact:prime,cdm", "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "c winner pact:xor" in output
        assert "pact:prime" in output and "cdm" in output
        assert "cancelled" in output

    def test_portfolio_deterministic_under_fixed_seed(self, smt_file,
                                                      capsys):
        main(["portfolio", str(smt_file), "--counters",
              "pact:xor,pact:prime,cdm", "--seed", "3"])
        first = capsys.readouterr().out
        main(["portfolio", str(smt_file), "--counters",
              "pact:xor,pact:prime,cdm", "--seed", "3"])
        second = capsys.readouterr().out
        # Identical winner and estimates; only timings may differ
        # (the second run is faster: the compile memo is warm).
        def _stable(text):
            return [line.split("elapsed=")[0].split("s  ")[-1]
                    for line in text.splitlines()]
        assert first.splitlines()[0] == second.splitlines()[0]
        assert _stable(first) == _stable(second)

    def test_portfolio_legacy_aliases_accepted(self, smt_file, capsys):
        assert main(["portfolio", str(smt_file), "--counters",
                     "pact_xor,cdm"]) == 0
        assert "c winner pact:xor" in capsys.readouterr().out

    def test_portfolio_unknown_counter_fails(self, smt_file, capsys):
        assert main(["portfolio", str(smt_file), "--counters",
                     "pact:md5"]) == 2
        assert "unknown counter" in capsys.readouterr().err


class TestGenerate:
    def test_generate_writes_files(self, tmp_path, capsys):
        out = tmp_path / "bench"
        code = main(["generate", "--logic", "QF_UFBV", "--out",
                     str(out), "--count", "2", "--width", "9"])
        assert code == 0
        files = sorted(out.glob("*.smt2"))
        assert len(files) == 2

    def test_generated_file_counts(self, tmp_path, capsys):
        out = tmp_path / "bench"
        main(["generate", "--logic", "QF_BVFP", "--out", str(out),
              "--count", "1", "--width", "8", "--seed", "5"])
        capsys.readouterr()
        smt2 = next(out.glob("*.smt2"))
        assert main(["enum", str(smt2)]) == 0

    def test_unknown_logic(self, tmp_path):
        assert main(["generate", "--logic", "QF_LIA", "--out",
                     str(tmp_path)]) == 2


class TestCompile:
    def test_compile_stats_and_dimacs(self, smt_file, capsys):
        assert main(["compile", str(smt_file)]) == 0
        output = capsys.readouterr().out
        assert "c compiled" in output
        assert "c simplify:" in output
        assert "c p show" in output
        assert "p cnf" in output

    def test_compile_out_file(self, smt_file, tmp_path, capsys):
        out = tmp_path / "toy.cnf"
        assert main(["compile", str(smt_file), "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("c ")
        from repro.sat.dimacs import parse_dimacs_document
        document = parse_dimacs_document(text)
        assert document.show  # projection exported for external counters

    def test_compile_no_simplify(self, smt_file, capsys):
        assert main(["compile", str(smt_file), "--no-simplify",
                     "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "c compiled" in output
        assert "c simplify:" not in output
        assert "p cnf" not in output  # --quiet suppresses the DIMACS

    def test_count_no_simplify_matches_default(self, smt_file, capsys):
        assert main(["count", str(smt_file), "--no-cache"]) == 0
        default = capsys.readouterr().out.splitlines()[0]
        assert main(["count", str(smt_file), "--no-simplify",
                     "--no-cache"]) == 0
        baseline = capsys.readouterr().out.splitlines()[0]
        assert default == baseline
