"""Cross-counter differential suite.

Every counter in the registry answers the same question — |Sol(F)|_S| —
so on any instance the exact engines must agree *bit-identically* and
the approximate engines must land within their (epsilon, delta)
envelope.  The benchgen generators make this testable at scale: each
instance carries an analytically computed ground truth, and hypothesis
drives (logic, seed, width) over all six logics of the evaluation.

Tier-1 runs tiny sizes (every example compiles + enumerates, so widths
stay small); the ``@pytest.mark.slow`` variants push the same
properties over bigger spaces in the dedicated slow CI job.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CountRequest, Problem, resolve
from repro.benchgen.generators import GENERATORS
from repro.benchgen.suite import LOGICS
from repro.utils.stats import relative_error

EXACT_COUNTERS = ("enum", "exact:cc")
APPROX_FAMILIES = ("pact:xor", "pact:prime", "pact:shift")
EPSILON, DELTA = 0.8, 0.2


def _count(counter, instance, **overrides):
    problem = Problem.from_instance(instance)
    request = CountRequest(counter=counter, epsilon=EPSILON, delta=DELTA,
                           **overrides)
    return resolve(counter).count(problem, request)


def _assert_exact_agreement(instance):
    """enum, exact:cc and the analytic ground truth must coincide."""
    for counter in EXACT_COUNTERS:
        response = _count(counter, instance, timeout=120)
        assert response.solved and response.exact, (
            f"{counter} failed on {instance.name}: {response.status}")
        assert response.estimate == instance.known_count, (
            f"{counter} on {instance.name}: {response.estimate} != "
            f"ground truth {instance.known_count}")


class TestExactAgreement:
    """The hypothesis-driven core: exact engines agree on every logic."""

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(logic=st.sampled_from(LOGICS),
           seed=st.integers(min_value=0, max_value=10_000),
           width=st.integers(min_value=5, max_value=7))
    def test_exact_counters_agree_tiny(self, logic, seed, width):
        _assert_exact_agreement(GENERATORS[logic](seed, width=width))

    @pytest.mark.slow
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(logic=st.sampled_from(LOGICS),
           seed=st.integers(min_value=0, max_value=1_000_000),
           width=st.integers(min_value=8, max_value=12))
    def test_exact_counters_agree_larger(self, logic, seed, width):
        _assert_exact_agreement(GENERATORS[logic](seed, width=width))


class TestExactPathPact:
    """Small spaces short-circuit Algorithm 1 into an exact answer —
    on those, pact joins the exact-agreement club bit-identically."""

    @pytest.mark.parametrize("family", APPROX_FAMILIES)
    @pytest.mark.parametrize("logic", LOGICS)
    def test_exact_path_matches_ground_truth(self, family, logic):
        # width 6: |S| = 64 < thresh(0.8), so pact counts exactly.
        instance = GENERATORS[logic](13, width=6)
        response = _count(family, instance, seed=5, timeout=120)
        assert response.solved and response.exact
        assert response.estimate == instance.known_count


class TestApproxEnvelope:
    """Approximate engines stay within max(b/s, s/b) - 1 <= epsilon.

    Each run is deterministic under a fixed seed, so these are stable
    regression tests, not statistical assertions; the paper observes
    errors an order of magnitude below the bound.
    """

    @pytest.mark.parametrize("family", APPROX_FAMILIES)
    @pytest.mark.parametrize("logic", LOGICS)
    def test_pact_within_envelope_tiny(self, family, logic):
        instance = GENERATORS[logic](21, width=8)
        response = _count(family, instance, seed=7, timeout=120,
                          iteration_override=3)
        if instance.known_count == 0:
            assert response.estimate == 0
            return
        assert response.solved
        assert relative_error(instance.known_count,
                              response.estimate) <= EPSILON

    # cdm's q-fold self-composition makes it the most expensive engine;
    # tier-1 keeps it to width 7 (full width/logic sweep in the slow job)
    @pytest.mark.parametrize("logic", ("QF_BVFP", "QF_ABVFPLRA"))
    def test_cdm_within_envelope_tiny(self, logic):
        instance = GENERATORS[logic](21, width=7)
        response = _count("cdm", instance, seed=7, timeout=120,
                          iteration_override=3)
        if instance.known_count == 0:
            assert response.estimate == 0
            return
        assert response.solved
        assert relative_error(instance.known_count,
                              response.estimate) <= EPSILON

    @pytest.mark.slow
    @pytest.mark.parametrize("family", APPROX_FAMILIES)
    @pytest.mark.parametrize("logic", LOGICS)
    @pytest.mark.parametrize("seed", (3, 17))
    def test_pact_within_envelope_larger(self, family, logic, seed):
        instance = GENERATORS[logic](seed * 31, width=10)
        response = _count(family, instance, seed=seed, timeout=300,
                          iteration_override=5)
        if instance.known_count == 0:
            assert response.estimate == 0
            return
        assert response.solved
        assert relative_error(instance.known_count,
                              response.estimate) <= EPSILON

    @pytest.mark.slow
    @pytest.mark.parametrize("logic", LOGICS)
    def test_cdm_within_envelope_larger(self, logic):
        # width 8 across every logic: the q-fold self-composition makes
        # cdm an order of magnitude slower than pact per instance, so
        # "larger" stays a width below pact's slow sweep.
        instance = GENERATORS[logic](21, width=8)
        response = _count("cdm", instance, seed=7, timeout=300,
                          iteration_override=3)
        if instance.known_count == 0:
            assert response.estimate == 0
            return
        assert response.solved
        assert relative_error(instance.known_count,
                              response.estimate) <= EPSILON
