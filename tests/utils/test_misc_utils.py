"""Tests for rng, stats, luby and deadline utilities."""

import math
import time

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverTimeoutError
from repro.utils import (
    Deadline, SeedSequence, geometric_mean, luby, median, relative_error,
)


class TestSeedSequence:
    def test_same_label_same_stream(self):
        root = SeedSequence(7)
        assert root.stream("a").random() == root.stream("a").random()

    def test_different_labels_differ(self):
        root = SeedSequence(7)
        assert root.stream("a").random() != root.stream("b").random()

    def test_different_seeds_differ(self):
        assert (SeedSequence(1).stream("x").random()
                != SeedSequence(2).stream("x").random())

    def test_child_path_isolation(self):
        root = SeedSequence(7)
        a = root.child("iter1").stream("hash")
        b = root.child("iter2").stream("hash")
        assert a.random() != b.random()

    def test_integer_in_range(self):
        root = SeedSequence(3)
        for i in range(100):
            value = root.integer(f"i{i}", 5, 9)
            assert 5 <= value <= 9


class TestStats:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_lower_middle(self):
        assert median([4, 1, 3, 2]) == 2

    def test_median_single(self):
        assert median([42]) == 42

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_relative_error_exact(self):
        assert relative_error(100, 100) == 0.0

    def test_relative_error_symmetric(self):
        assert relative_error(100, 50) == pytest.approx(1.0)
        assert relative_error(50, 100) == pytest.approx(1.0)

    def test_relative_error_matches_paper_definition(self):
        # e = max(b/s, s/b) - 1
        assert relative_error(128, 160) == pytest.approx(160 / 128 - 1)

    def test_relative_error_zero_cases(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(0, 5) == math.inf

    @given(st.integers(1, 10 ** 6), st.integers(1, 10 ** 6))
    def test_relative_error_nonnegative(self, b, s):
        assert relative_error(b, s) >= 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestLuby:
    def test_first_terms(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    def test_powers_of_two_positions(self):
        for k in range(1, 10):
            assert luby((1 << k) - 1) == 1 << (k - 1)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            luby(0)


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining() == math.inf
        deadline.check()  # must not raise

    def test_zero_deadline_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(SolverTimeoutError):
            deadline.check()

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_remaining_decreases(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        time.sleep(0.01)
        assert deadline.remaining() < first
