"""Tests for the Miller-Rabin primality test and next_prime."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.primes import is_prime, next_prime


KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 257, 65537,
                2 ** 31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 6, 8, 9, 15, 21, 25, 27, 33, 91, 561, 1105,
                    2 ** 32 - 1, 2 ** 31]  # includes Carmichael numbers


class TestIsPrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_matches_sieve_below_10000(self):
        limit = 10_000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit ** 0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_prime(n) == sieve[n], n


class TestNextPrime:
    # The H_prime family needs "smallest prime > 2^l" (paper III-A).
    @pytest.mark.parametrize("l, expected", [
        (1, 3), (2, 5), (3, 11), (4, 17), (5, 37), (6, 67), (7, 131),
        (8, 257), (16, 65537),
    ])
    def test_smallest_prime_above_power_of_two(self, l, expected):
        assert next_prime(2 ** l) == expected

    def test_below_two(self):
        assert next_prime(0) == 2
        assert next_prime(1) == 2
        assert next_prime(-5) == 2

    @given(st.integers(min_value=2, max_value=10 ** 9))
    def test_result_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert p > n
        assert is_prime(p)
        # No prime strictly between n and p (spot-check small gaps).
        for q in range(n + 1, min(p, n + 50)):
            assert not is_prime(q)
